//! Parallel, dependency-aware scenario-sweep harness.
//!
//! Takes a batch of [`Scenario`]s (usually from a
//! [`ScenarioGrid`](crate::scenario::ScenarioGrid)) and collects a
//! [`BatchReport`] of [`ScenarioResult`]s that serializes to the
//! `BENCH_*.json` format downstream tooling tracks.
//!
//! Execution is dependency-aware: scenarios are grouped into *chains* by
//! [`Scenario::chain_key`] (same topology, demand model + seed, objective
//! and solver — only the load and the sim stage vary within a chain).
//! Rayon fans out across chains; within a chain the scenarios run serially
//! on one shared [`spef_core::TeWorkspace`] + [`SimWorkspace`] pair, so
//! neighbouring grid points reuse the engine's DAG/flow/split arenas, the
//! SPF skip, and the simplex tableau without reallocating. Scenarios in a
//! chain that are identical up to the sim stage ([`Scenario::solve_key`])
//! share a single pipeline solve outright.
//!
//! Reuse is strictly *result-preserving*: before every distinct solve the
//! workspace's saved solver trajectories are dropped
//! ([`spef_core::TeWorkspace::clear_solutions`]), so each scenario still
//! runs the exact cold iteration sequence and every deterministic result
//! field is bit-identical to an isolated run —
//! [`BatchOptions::cold_solves`] forces those isolated runs for
//! baseline-capture and A/B proofs. Every scenario carries its own seed,
//! so the parallel schedule cannot change any result either way.
//!
//! ```
//! use spef_experiments::harness::{run_batch, BatchOptions};
//! use spef_experiments::scenario::ScenarioGrid;
//! use spef_experiments::scenario::TopologySpec;
//!
//! let scenarios = ScenarioGrid::new()
//!     .topologies([TopologySpec::Fig1])
//!     .seeds([1])
//!     .loads([0.2])
//!     .build();
//! let report = run_batch(scenarios, &BatchOptions::default());
//! assert_eq!(report.results.len(), 1);
//! assert!(report.results[0].mlu < 1.0);
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use serde::{Error as SerdeError, Value};
use spef_baselines::fortz_thorup::{FtConfig, FtOutcome};
use spef_baselines::{RobustConfig, RobustOutcome};
use spef_core::{
    ForwardingTable, SpefRouting, SpfStats, TeInstance, TeSolver, TeWorkspace,
    STALE_WEIGHT_DAG_RTOL,
};
use spef_netsim::{simulate_with, SchedulerKind, SimWorkspace};
use spef_topology::{Network, TrafficMatrix};

use crate::reconfig;
use crate::scenario::{Scenario, SolverSpec};

/// Schema version stamped into every [`BatchReport`]; bump when the JSON
/// layout changes incompatibly.
pub const BATCH_SCHEMA_VERSION: u64 = 1;

/// Deterministic measurements of a scenario's packet-level simulation
/// stage. Every field is a pure function of the scenario (the simulator is
/// seeded), so `repro diff` compares them bit-identically — across runs,
/// machines, *and scheduler kinds* (heap vs calendar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimScenarioResult {
    /// Packets handed to the network by all sources.
    pub generated_packets: u64,
    /// Packets that reached their destination.
    pub delivered_packets: u64,
    /// Packets dropped at full buffers.
    pub dropped_packets: u64,
    /// Mean end-to-end delay of delivered packets, seconds.
    pub mean_delay: f64,
    /// 99th-percentile end-to-end delay, seconds.
    pub p99_delay: f64,
    /// Links that carried any traffic.
    pub links_used: u64,
    /// Busiest link's mean load in bits/s.
    pub max_link_load_bps: f64,
    /// Sum of all links' mean loads in bits/s (total carried traffic).
    pub total_link_load_bps: f64,
    /// High-water mark of live packet slots (memory witness).
    pub peak_packet_slots: u64,
}

/// Deterministic measurements of a scenario's single-circuit failure
/// stage. Every field is a pure function of the scenario, so `repro diff`
/// compares them bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureScenarioResult {
    /// MLU after OSPF (InvCap weights) reconverges on the survivors.
    pub mlu_ospf: f64,
    /// MLU with the stale intact-optimal SPEF weights on the survivors
    /// (even-ECMP — the second weights' splits are meaningless once the
    /// path set changed).
    pub mlu_stale: f64,
    /// MLU after full SPEF re-optimisation on the degraded topology.
    pub mlu_reopt: f64,
    /// TE-solver iterations the re-optimisation spent (cold trajectory —
    /// the gated sweep clears warm starts so results stay mode-independent;
    /// warm-vs-cold savings are measured by the bench lane instead).
    pub reopt_iterations: u64,
    /// Worst-case MLU (over intact + every connected single-circuit
    /// failure) of the robust weight search's best setting.
    pub mlu_robust: f64,
    /// Weight pushes needed to migrate from the stale to the re-optimised
    /// setting.
    pub reconfig_steps: u64,
    /// Peak transient MLU under the naive ascending-index push order.
    pub reconfig_peak_mlu: f64,
    /// Peak transient MLU under the greedy minimum-MLU push order.
    pub reconfig_greedy_peak_mlu: f64,
}

/// Measurements of a scenario's scale-ablation stage. The size counts are
/// deterministic (pure functions of the scenario) and bit-diffed by
/// `repro diff`; the two `peak_*_bytes` witnesses are *excluded* from the
/// diff — they legitimately vary with the tile-size execution knob (that
/// variation is the whole point of measuring them) and, in chain mode,
/// with what earlier chain scenarios grew the shared workspace to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleScenarioResult {
    /// Nodes of the materialized network.
    pub nodes: u64,
    /// Directed links of the materialized network.
    pub links: u64,
    /// Destinations the routing covers.
    pub dests: u64,
    /// Total `(edge, ratio)` forwarding entries across all
    /// `(destination, router)` rows.
    pub fib_entries: u64,
    /// High-water bytes of the solver workspace's routing arenas (DAG
    /// sets, split tables, flow buffers) — capacity-based, so tiled runs
    /// show the O(tile·edges) ceiling dense runs don't have.
    pub peak_arena_bytes: u64,
    /// High-water bytes of the forwarding-table arenas.
    pub peak_fib_bytes: u64,
}

/// Aggregate SPF-engine counters of one sweep: summed over every chain
/// workspace, failure-stage probe, robust weight search and
/// reconfiguration transient the batch executed. Execution metadata —
/// like `threads` and `tile_size` it sits outside the bit-diffed fields
/// (the incremental and masked engine paths are bit-identical to dense
/// rebuilds; only these counters move), so sweeps diff clean across
/// engine modes while the dirty-set effectiveness stays visible per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpfStatsResult {
    /// SPF batch builds actually executed (fingerprint skips excluded).
    pub builds: u64,
    /// Builds served by the weight-delta incremental path.
    pub incremental_builds: u64,
    /// Destination slots rebuilt in place across all delta builds.
    pub slots_rebuilt: u64,
    /// In-place topology patches after `fail_links`/`restore_links`
    /// (dense fallbacks excluded).
    pub topology_builds: u64,
    /// Cumulative links masked by `fail_links` calls.
    pub masked_links: u64,
}

impl SpfStatsResult {
    fn from_stats(s: SpfStats) -> SpfStatsResult {
        SpfStatsResult {
            builds: s.builds,
            incremental_builds: s.incremental_builds,
            slots_rebuilt: s.slots_rebuilt,
            topology_builds: s.topology_builds,
            masked_links: s.masked_links,
        }
    }
}

/// Adds one engine's counters into a running total (`last_dirty`, a
/// gauge, takes the maximum).
fn add_spf(total: &mut SpfStats, s: SpfStats) {
    total.builds += s.builds;
    total.incremental_builds += s.incremental_builds;
    total.slots_rebuilt += s.slots_rebuilt;
    total.last_dirty = total.last_dirty.max(s.last_dirty);
    total.topology_builds += s.topology_builds;
    total.masked_links += s.masked_links;
}

/// Measurements of one successfully solved scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario that produced this result (embedded so a report is
    /// self-describing).
    pub scenario: Scenario,
    /// Maximum link utilization of the realised routing.
    pub mlu: f64,
    /// Normalized aggregate utility (1 = the TE optimum's scale; see
    /// `spef_core::metrics::normalized_utility`).
    pub utility: f64,
    /// TE-solver iterations spent on the first weights.
    pub iterations: u64,
    /// Whether the NEM second-weight solver converged.
    pub nem_converged: bool,
    /// Packet-level simulation measurements (present iff the scenario has
    /// a [`SimSpec`](crate::scenario::SimSpec) stage).
    pub sim: Option<SimScenarioResult>,
    /// Failure-stage measurements (present iff the scenario has a
    /// [`FailureSpec`](crate::scenario::FailureSpec) stage).
    pub failure: Option<FailureScenarioResult>,
    /// Scale-stage measurements (present iff the scenario carries the
    /// scale-ablation stage).
    pub scale: Option<ScaleScenarioResult>,
    /// Wall-clock milliseconds for the full pipeline (the only
    /// non-deterministic field).
    pub wall_ms: f64,
}

// Hand-written so the optional `sim`, `failure` and `scale` fields are
// omitted when absent: stage-less results serialize byte-identically to
// the committed pre-PR 4 / pre-PR 7 / pre-PR 8 baselines, and those
// baselines parse back without the keys.
impl Serialize for ScenarioResult {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("mlu".to_string(), self.mlu.to_value()),
            ("utility".to_string(), self.utility.to_value()),
            ("iterations".to_string(), self.iterations.to_value()),
            ("nem_converged".to_string(), self.nem_converged.to_value()),
        ];
        if let Some(sim) = &self.sim {
            fields.push(("sim".to_string(), sim.to_value()));
        }
        if let Some(failure) = &self.failure {
            fields.push(("failure".to_string(), failure.to_value()));
        }
        if let Some(scale) = &self.scale {
            fields.push(("scale".to_string(), scale.to_value()));
        }
        fields.push(("wall_ms".to_string(), self.wall_ms.to_value()));
        Value::Object(fields)
    }
}

impl Deserialize for ScenarioResult {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let field = |key: &str| -> Result<&Value, SerdeError> {
            value.get_field(key).ok_or_else(|| {
                SerdeError::custom(format!("missing field `{key}` in ScenarioResult"))
            })
        };
        Ok(ScenarioResult {
            scenario: Scenario::from_value(field("scenario")?)?,
            mlu: f64::from_value(field("mlu")?)?,
            utility: f64::from_value(field("utility")?)?,
            iterations: u64::from_value(field("iterations")?)?,
            nem_converged: bool::from_value(field("nem_converged")?)?,
            sim: match value.get_field("sim") {
                None => None,
                Some(v) => Option::<SimScenarioResult>::from_value(v)?,
            },
            failure: match value.get_field("failure") {
                None => None,
                Some(v) => Option::<FailureScenarioResult>::from_value(v)?,
            },
            scale: match value.get_field("scale") {
                None => None,
                Some(v) => Option::<ScaleScenarioResult>::from_value(v)?,
            },
            wall_ms: f64::from_value(field("wall_ms")?)?,
        })
    }
}

/// A scenario the pipeline could not solve (e.g. demands infeasible at the
/// requested load).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioFailure {
    /// The failing scenario.
    pub scenario: Scenario,
    /// The solver error, stringified.
    pub error: String,
}

/// Everything one sweep produces; serializes to the `BENCH_*.json` format.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// JSON schema version ([`BATCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Successful runs, in scenario order.
    pub results: Vec<ScenarioResult>,
    /// Failed runs, in scenario order.
    pub failures: Vec<ScenarioFailure>,
    /// Wall-clock milliseconds for the whole batch.
    pub total_wall_ms: f64,
    /// Worker threads the batch ran on (1 = serial; rayon's effective
    /// pool size otherwise). Execution metadata — outside the bit-diffed
    /// fields.
    pub threads: u64,
    /// Destination tile size the batch ran with
    /// ([`BatchOptions::tile`]); `None` = dense. Execution metadata —
    /// outside the bit-diffed fields, which is exactly what lets a tiled
    /// run diff clean against a dense baseline.
    pub tile_size: Option<u64>,
    /// Aggregate SPF-engine counters of the batch ([`SpfStatsResult`]);
    /// `None` when the batch executed no SPF builds (or the report
    /// predates the field). Execution metadata — outside the bit-diffed
    /// fields, so masked/incremental sweeps diff clean against dense
    /// baselines.
    pub spf: Option<SpfStatsResult>,
}

// Hand-written so `tile_size` and `spf` are omitted when absent: dense
// reports serialize byte-identically to the committed pre-PR 8 / pre-PR 10
// baselines, and those baselines parse back without the keys.
impl Serialize for BatchReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("results".to_string(), self.results.to_value()),
            ("failures".to_string(), self.failures.to_value()),
            ("total_wall_ms".to_string(), self.total_wall_ms.to_value()),
            ("threads".to_string(), self.threads.to_value()),
        ];
        if let Some(tile) = self.tile_size {
            fields.push(("tile_size".to_string(), tile.to_value()));
        }
        if let Some(spf) = &self.spf {
            fields.push(("spf".to_string(), spf.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for BatchReport {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let field = |key: &str| -> Result<&Value, SerdeError> {
            value
                .get_field(key)
                .ok_or_else(|| SerdeError::custom(format!("missing field `{key}` in BatchReport")))
        };
        Ok(BatchReport {
            schema_version: u64::from_value(field("schema_version")?)?,
            results: Vec::<ScenarioResult>::from_value(field("results")?)?,
            failures: Vec::<ScenarioFailure>::from_value(field("failures")?)?,
            total_wall_ms: f64::from_value(field("total_wall_ms")?)?,
            threads: u64::from_value(field("threads")?)?,
            tile_size: match value.get_field("tile_size") {
                None => None,
                Some(v) => Option::<u64>::from_value(v)?,
            },
            spf: match value.get_field("spf") {
                None => None,
                Some(v) => Option::<SpfStatsResult>::from_value(v)?,
            },
        })
    }
}

impl BatchReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("batch report serializes")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message on malformed input.
    pub fn from_json(text: &str) -> Result<BatchReport, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Writes the report to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Lists every *deterministic* difference between `self` (the baseline)
    /// and `other` (a candidate run): scenario set and order, per-scenario
    /// MLU / utility / iterations / NEM convergence, and failures. Wall-clock
    /// fields (`wall_ms`, `total_wall_ms`) and `threads` are ignored — they
    /// are the only fields that legitimately vary run to run.
    ///
    /// Numeric fields are compared for **bit-identical** equality: the sweep
    /// pipeline is deterministic, so any drift — however small — means an
    /// algorithmic change and must be triaged, not tolerated.
    pub fn result_drift(&self, other: &BatchReport) -> Vec<String> {
        let mut drift = Vec::new();
        if self.schema_version != other.schema_version {
            drift.push(format!(
                "schema version: {} vs {}",
                self.schema_version, other.schema_version
            ));
        }
        if self.results.len() != other.results.len() {
            drift.push(format!(
                "result count: {} vs {}",
                self.results.len(),
                other.results.len()
            ));
        }
        for (a, b) in self.results.iter().zip(&other.results) {
            if a.scenario.id != b.scenario.id {
                drift.push(format!(
                    "scenario order: {:?} vs {:?}",
                    a.scenario.id, b.scenario.id
                ));
                continue;
            }
            let id = &a.scenario.id;
            if a.mlu.to_bits() != b.mlu.to_bits() {
                drift.push(format!("{id}: mlu {} vs {}", a.mlu, b.mlu));
            }
            if a.utility.to_bits() != b.utility.to_bits() {
                drift.push(format!("{id}: utility {} vs {}", a.utility, b.utility));
            }
            if a.iterations != b.iterations {
                drift.push(format!(
                    "{id}: iterations {} vs {}",
                    a.iterations, b.iterations
                ));
            }
            if a.nem_converged != b.nem_converged {
                drift.push(format!(
                    "{id}: nem_converged {} vs {}",
                    a.nem_converged, b.nem_converged
                ));
            }
            match (&a.sim, &b.sim) {
                (None, None) => {}
                (Some(sa), Some(sb)) => drift_sim(&mut drift, id, sa, sb),
                (a, b) => drift.push(format!(
                    "{id}: sim stage present {} vs {}",
                    a.is_some(),
                    b.is_some()
                )),
            }
            match (&a.failure, &b.failure) {
                (None, None) => {}
                (Some(fa), Some(fb)) => drift_failure(&mut drift, id, fa, fb),
                (a, b) => drift.push(format!(
                    "{id}: failure stage present {} vs {}",
                    a.is_some(),
                    b.is_some()
                )),
            }
            match (&a.scale, &b.scale) {
                (None, None) => {}
                (Some(sa), Some(sb)) => drift_scale(&mut drift, id, sa, sb),
                (a, b) => drift.push(format!(
                    "{id}: scale stage present {} vs {}",
                    a.is_some(),
                    b.is_some()
                )),
            }
        }
        if self.failures.len() != other.failures.len() {
            drift.push(format!(
                "failure count: {} vs {}",
                self.failures.len(),
                other.failures.len()
            ));
        }
        for (a, b) in self.failures.iter().zip(&other.failures) {
            if a.scenario.id != b.scenario.id || a.error != b.error {
                drift.push(format!(
                    "failure {:?} ({}) vs {:?} ({})",
                    a.scenario.id, a.error, b.scenario.id, b.error
                ));
            }
        }
        drift
    }

    /// A terminal summary table of the batch.
    pub fn summary_table(&self) -> crate::report::TextTable {
        let mut table = crate::report::TextTable::new(
            "scenario sweep",
            &[
                "scenario", "MLU", "utility", "iters", "NEM", "sim pkts", "loss %", "wall ms",
            ],
        );
        for r in &self.results {
            let (pkts, loss) = match &r.sim {
                None => ("-".to_string(), "-".to_string()),
                Some(sim) => (
                    sim.generated_packets.to_string(),
                    format!(
                        "{:.2}",
                        100.0 * sim.dropped_packets as f64 / sim.generated_packets.max(1) as f64
                    ),
                ),
            };
            table.push_row(vec![
                r.scenario.id.clone(),
                format!("{:.4}", r.mlu),
                format!("{:.4}", r.utility),
                r.iterations.to_string(),
                if r.nem_converged { "conv" } else { "MAX" }.to_string(),
                pkts,
                loss,
                format!("{:.1}", r.wall_ms),
            ]);
        }
        for f in &self.failures {
            table.push_row(vec![
                f.scenario.id.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("FAILED: {}", f.error),
            ]);
        }
        table
    }
}

/// Appends per-field drift lines for a sim-stage pair (bit-identical float
/// comparison, like the top-level result fields).
fn drift_sim(drift: &mut Vec<String>, id: &str, a: &SimScenarioResult, b: &SimScenarioResult) {
    let mut num = |name: &str, x: u64, y: u64| {
        if x != y {
            drift.push(format!("{id}: sim {name} {x} vs {y}"));
        }
    };
    num(
        "generated_packets",
        a.generated_packets,
        b.generated_packets,
    );
    num(
        "delivered_packets",
        a.delivered_packets,
        b.delivered_packets,
    );
    num("dropped_packets", a.dropped_packets, b.dropped_packets);
    num("links_used", a.links_used, b.links_used);
    num(
        "peak_packet_slots",
        a.peak_packet_slots,
        b.peak_packet_slots,
    );
    for (name, x, y) in [
        ("mean_delay", a.mean_delay, b.mean_delay),
        ("p99_delay", a.p99_delay, b.p99_delay),
        (
            "max_link_load_bps",
            a.max_link_load_bps,
            b.max_link_load_bps,
        ),
        (
            "total_link_load_bps",
            a.total_link_load_bps,
            b.total_link_load_bps,
        ),
    ] {
        if x.to_bits() != y.to_bits() {
            drift.push(format!("{id}: sim {name} {x} vs {y}"));
        }
    }
}

/// Appends per-field drift lines for a failure-stage pair (bit-identical
/// float comparison, like the top-level result fields).
fn drift_failure(
    drift: &mut Vec<String>,
    id: &str,
    a: &FailureScenarioResult,
    b: &FailureScenarioResult,
) {
    if a.reopt_iterations != b.reopt_iterations {
        drift.push(format!(
            "{id}: failure reopt_iterations {} vs {}",
            a.reopt_iterations, b.reopt_iterations
        ));
    }
    if a.reconfig_steps != b.reconfig_steps {
        drift.push(format!(
            "{id}: failure reconfig_steps {} vs {}",
            a.reconfig_steps, b.reconfig_steps
        ));
    }
    for (name, x, y) in [
        ("mlu_ospf", a.mlu_ospf, b.mlu_ospf),
        ("mlu_stale", a.mlu_stale, b.mlu_stale),
        ("mlu_reopt", a.mlu_reopt, b.mlu_reopt),
        ("mlu_robust", a.mlu_robust, b.mlu_robust),
        (
            "reconfig_peak_mlu",
            a.reconfig_peak_mlu,
            b.reconfig_peak_mlu,
        ),
        (
            "reconfig_greedy_peak_mlu",
            a.reconfig_greedy_peak_mlu,
            b.reconfig_greedy_peak_mlu,
        ),
    ] {
        if x.to_bits() != y.to_bits() {
            drift.push(format!("{id}: failure {name} {x} vs {y}"));
        }
    }
}

/// Appends per-field drift lines for a scale-stage pair. The size counts
/// are bit-compared; the `peak_*_bytes` memory witnesses are deliberately
/// ignored — they vary with the tile-size execution knob and chain-shared
/// workspace history (see [`ScaleScenarioResult`]).
fn drift_scale(
    drift: &mut Vec<String>,
    id: &str,
    a: &ScaleScenarioResult,
    b: &ScaleScenarioResult,
) {
    for (name, x, y) in [
        ("nodes", a.nodes, b.nodes),
        ("links", a.links, b.links),
        ("dests", a.dests, b.dests),
        ("fib_entries", a.fib_entries, b.fib_entries),
    ] {
        if x != y {
            drift.push(format!("{id}: scale {name} {x} vs {y}"));
        }
    }
}

/// Batch execution options.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Run scenarios one at a time on the calling thread instead of fanning
    /// out over rayon (useful for profiling a single scenario's cost).
    pub serial: bool,
    /// Event scheduler driving the sim stages (default: calendar). Results
    /// are bit-identical either way — the flag exists so the regression
    /// gate and benchmarks can prove exactly that.
    pub sim_scheduler: SchedulerKind,
    /// Solve every scenario in its own fresh workspace with no chain
    /// grouping or solve sharing (the pre-PR 6 execution model). Results
    /// are bit-identical to the default dependency-aware mode — the flag
    /// exists to capture `pre` baselines and let `repro diff` prove exactly
    /// that.
    pub cold_solves: bool,
    /// Destination tile size for the routing arenas
    /// ([`TeWorkspace::set_tile_size`]); `None` = dense. A pure execution
    /// knob: results are bit-identical for every tile size, only peak
    /// memory (and the warm-start fingerprint) changes — the regression
    /// gate cross-diffs tiled vs dense sweeps to prove exactly that.
    pub tile: Option<usize>,
    /// Force dense SPF rebuilds everywhere
    /// ([`TeWorkspace::set_incremental`] off, and dense probes in the
    /// Fortz–Thorup rows). A pure execution knob: the delta-aware
    /// incremental engine is bit-identical to cold dense rebuilds, so
    /// results must not move — the regression gate cross-diffs
    /// full-rebuild vs incremental sweeps to prove exactly that.
    pub full_rebuild: bool,
}

/// The routing a scenario's solver row produced: a full SPEF pipeline, or
/// the even-ECMP routing of the Fortz–Thorup weight search.
enum PipelineRouting {
    Spef(SpefRouting),
    FortzThorup(FtOutcome),
}

impl PipelineRouting {
    fn max_link_utilization(&self, network: &Network) -> f64 {
        match self {
            PipelineRouting::Spef(r) => r.max_link_utilization(network),
            PipelineRouting::FortzThorup(ft) => ft.routing.max_link_utilization(network),
        }
    }

    fn normalized_utility(&self, network: &Network) -> f64 {
        match self {
            PipelineRouting::Spef(r) => r.normalized_utility(network),
            PipelineRouting::FortzThorup(ft) => ft.routing.normalized_utility(network),
        }
    }

    /// TE iterations for SPEF rows; weight evaluations for FT rows (the
    /// unit of solver work either way).
    fn iterations(&self) -> u64 {
        match self {
            PipelineRouting::Spef(r) => r.te_solution().iterations as u64,
            PipelineRouting::FortzThorup(ft) => ft.evaluations as u64,
        }
    }

    /// FT rows have no NEM stage, so convergence holds vacuously.
    fn nem_converged(&self) -> bool {
        match self {
            PipelineRouting::Spef(r) => r.nem_converged(),
            PipelineRouting::FortzThorup(_) => true,
        }
    }

    fn forwarding_table(&self) -> &ForwardingTable {
        match self {
            PipelineRouting::Spef(r) => r.forwarding_table(),
            PipelineRouting::FortzThorup(ft) => ft.routing.forwarding_table(),
        }
    }
}

/// A solved pipeline kept alive so later scenarios in the same chain can
/// reuse it: the materialized instance plus the routing it produced.
struct SolvedPipeline {
    network: Network,
    traffic: TrafficMatrix,
    routing: PipelineRouting,
}

/// The fixed Fortz–Thorup search budget of [`SolverSpec::FortzThorup`]
/// sweep rows (part of the rows' identity — see the variant docs). Only
/// `full_rebuild` comes from execution options, and it cannot move a
/// result.
fn sweep_ft_config(full_rebuild: bool) -> FtConfig {
    FtConfig {
        max_weight: 20,
        max_evaluations: 1000,
        restarts: 1,
        seed: 0xF7,
        full_rebuild,
    }
}

/// Materializes and solves a scenario's pipeline (everything up to, not
/// including, the sim stage) on the given workspace.
///
/// Saved solver trajectories are dropped first, so the solve is a cold
/// (bit-identical) iteration sequence on warm arenas — chain reuse must
/// never move a result.
fn solve_pipeline(
    scenario: &Scenario,
    ws: &mut TeWorkspace,
    options: &BatchOptions,
    spf: &mut SpfStats,
) -> Result<SolvedPipeline, String> {
    let network = scenario.topology.build();
    let traffic = scenario.traffic.build(&network);
    let routing = if scenario.solver == SolverSpec::FortzThorup {
        let cfg = sweep_ft_config(options.full_rebuild);
        let ft = FtOutcome::local_search(&network, &traffic, &cfg).map_err(|e| e.to_string())?;
        add_spf(spf, ft.spf_stats);
        // An overloaded best routing has no finite utility, which the
        // report's JSON round trip cannot carry — report it as a
        // deterministic scenario failure (like the infeasible Frank–Wolfe
        // rows this family already pins).
        let mlu = ft.routing.max_link_utilization(&network);
        if mlu >= 1.0 {
            return Err(format!(
                "Fortz-Thorup best weights overload the network (MLU {mlu})"
            ));
        }
        PipelineRouting::FortzThorup(ft)
    } else {
        let objective = scenario.objective.build(network.link_count());
        let config = scenario.solver.build();
        ws.clear_solutions();
        let routing = config
            .solve_in(TeInstance::new(&network, &traffic, &objective), ws)
            .map_err(|e| e.to_string())?;
        PipelineRouting::Spef(routing)
    };
    Ok(SolvedPipeline {
        network,
        traffic,
        routing,
    })
}

/// Runs a scenario's optional packet-level sim stage against an already
/// solved pipeline.
fn sim_stage(
    scenario: &Scenario,
    solved: &SolvedPipeline,
    sim_scheduler: SchedulerKind,
    sim_ws: &mut SimWorkspace,
) -> Result<Option<SimScenarioResult>, String> {
    let Some(spec) = &scenario.sim else {
        return Ok(None);
    };
    let mut cfg = spec.config();
    cfg.scheduler = sim_scheduler;
    let report = simulate_with(
        &solved.network,
        &solved.traffic,
        solved.routing.forwarding_table(),
        &cfg,
        sim_ws,
    )
    .map_err(|e| format!("simulation failed: {e}"))?;
    Ok(Some(SimScenarioResult {
        generated_packets: report.generated_packets,
        delivered_packets: report.delivered_packets,
        dropped_packets: report.dropped_packets,
        mean_delay: report.mean_delay,
        p99_delay: report.p99_delay,
        links_used: report.links_used as u64,
        max_link_load_bps: report
            .mean_link_load_bps
            .iter()
            .cloned()
            .fold(0.0, f64::max),
        total_link_load_bps: report.mean_link_load_bps.iter().sum(),
        peak_packet_slots: report.peak_packet_slots,
    }))
}

/// Per-chain memo of robust weight-search worst cases. The search depends
/// on the intact instance and the search parameters — not on which circuit
/// a scenario fails — so every circuit of a chain shares one search.
/// Memoization is a pure speedup: the search is deterministic, so the
/// cold-solves path recomputing it per scenario gets bit-identical values.
type RobustMemo = Vec<(String, f64)>;

/// Persistent failure-stage MLU probes, one per weight setting (OSPF /
/// stale-SPEF). Shared across every scenario of a chain so circuit probes
/// ride in-place mask round-trips on retained engine state instead of
/// building a fresh engine (and a fresh degraded `Network` routing) per
/// scenario — results are bit-identical either way (see
/// [`reconfig::MluProbe`]).
struct FailureProbes {
    ospf: reconfig::MluProbe,
    stale: reconfig::MluProbe,
}

impl FailureProbes {
    fn new(full_rebuild: bool) -> FailureProbes {
        FailureProbes {
            ospf: reconfig::MluProbe::new(full_rebuild),
            stale: reconfig::MluProbe::new(full_rebuild),
        }
    }

    /// Both probes' SPF counters, summed.
    fn spf_stats(&self) -> SpfStats {
        let mut total = self.ospf.spf_stats();
        add_spf(&mut total, self.stale.spf_stats());
        total
    }
}

/// Runs a scenario's optional single-circuit failure stage against an
/// already solved (intact) pipeline: fail the circuit, measure the OSPF /
/// stale-SPEF / re-optimised-SPEF MLU triple, the robust-weight worst
/// case, and the stale→reopt weight-reconfiguration transient.
///
/// The re-optimisation clears the workspace's saved trajectories first
/// ([`TeWorkspace::clear_solutions`]) so it runs the cold iteration
/// sequence: chain mode and [`BatchOptions::cold_solves`] stay
/// bit-identical (the removal warm start's iteration savings are proven by
/// the solver tests and the bench lane, never inside the gated sweep).
fn failure_stage(
    scenario: &Scenario,
    solved: &SolvedPipeline,
    ws: &mut TeWorkspace,
    robust_memo: &mut RobustMemo,
    probes: &mut FailureProbes,
    options: &BatchOptions,
    spf: &mut SpfStats,
) -> Result<Option<FailureScenarioResult>, String> {
    let Some(spec) = &scenario.failure else {
        return Ok(None);
    };
    // The stage re-optimises with the scenario's SPEF solver and needs the
    // intact solve's continuous weights — neither exists for an FT row.
    let PipelineRouting::Spef(intact) = &solved.routing else {
        return Err(
            "failure stage: supported for SPEF solvers only (fw/fw-fast/fw-pinned/dd)".to_string(),
        );
    };
    let circuits = solved.network.duplex_circuits();
    let c = spec.circuit as usize;
    if c >= circuits.len() {
        return Err(format!(
            "failure stage: circuit index {c} out of range ({} duplex circuits)",
            circuits.len()
        ));
    }
    let (degraded, kept) = solved
        .network
        .without_links(&circuits[c])
        .map_err(|e| format!("failure stage: failing circuit {c}: {e}"))?;
    let dests = solved.traffic.destinations();
    let remap = |vals: &[f64]| -> Vec<f64> { kept.iter().map(|&old| vals[old.index()]).collect() };

    // OSPF reconvergence: InvCap weights on the survivors, even ECMP —
    // probed by masking the circuit on the persistent intact-network
    // engine (bit-identical to cold routing on `degraded`).
    let invcap: Vec<f64> = solved
        .network
        .capacities()
        .iter()
        .map(|c| 1.0 / c)
        .collect();
    let mlu_ospf = probes
        .ospf
        .mlu(
            &solved.network,
            &solved.traffic,
            &dests,
            &invcap,
            0.0,
            &circuits[c],
        )
        .map_err(|e| format!("failure stage: OSPF routing: {e}"))?;

    // Stale SPEF: the intact-optimal first weights on the survivors. The
    // continuous weights solve nothing on the degraded topology, so
    // equal-cost ties use the shared coarse threshold (see
    // [`STALE_WEIGHT_DAG_RTOL`]'s contract), scaled by the largest
    // *surviving* weight — the same maximum the kept-remapped vector
    // folds to.
    let w_stale = remap(&intact.te_solution().weights);
    let max_w = w_stale.iter().cloned().fold(0.0, f64::max);
    let mlu_stale = probes
        .stale
        .mlu(
            &solved.network,
            &solved.traffic,
            &dests,
            &intact.te_solution().weights,
            STALE_WEIGHT_DAG_RTOL * max_w,
            &circuits[c],
        )
        .map_err(|e| format!("failure stage: stale-weight routing: {e}"))?;

    // Full SPEF re-optimisation on the degraded topology.
    let obj = scenario.objective.build(degraded.link_count());
    let config = scenario.solver.build();
    ws.clear_solutions();
    let reopt = config
        .solve_in(TeInstance::new(&degraded, &solved.traffic, &obj), ws)
        .map_err(|e| format!("failure stage: re-optimisation after circuit {c}: {e}"))?;
    let mlu_reopt = reopt.max_link_utilization(&degraded);

    // Robust weight search on the intact instance (chain-memoized).
    let robust_key = format!(
        "{}+e{}s{}",
        scenario.solve_key(),
        spec.robust_evals,
        spec.robust_seed
    );
    let mlu_robust = match robust_memo.iter().find(|(k, _)| *k == robust_key) {
        Some((_, worst)) => *worst,
        None => {
            let cfg = RobustConfig {
                max_evaluations: spec.robust_evals as usize,
                seed: spec.robust_seed,
                full_rebuild: options.full_rebuild,
                ..RobustConfig::default()
            };
            let out = RobustOutcome::local_search(&solved.network, &solved.traffic, &cfg)
                .map_err(|e| format!("failure stage: robust weight search: {e}"))?;
            add_spf(spf, out.spf_stats);
            robust_memo.push((robust_key, out.worst_mlu));
            out.worst_mlu
        }
    };

    // Reconfiguration transient: ordered pushes from the stale weights to
    // the re-optimised ones.
    let (transit, transit_spf) = reconfig::migrate_with(
        &degraded,
        &solved.traffic,
        &w_stale,
        &reopt.te_solution().weights,
        options.full_rebuild,
    )
    .map_err(|e| format!("failure stage: reconfiguration transient: {e}"))?;
    add_spf(spf, transit_spf);

    Ok(Some(FailureScenarioResult {
        mlu_ospf,
        mlu_stale,
        mlu_reopt,
        reopt_iterations: reopt.te_solution().iterations as u64,
        mlu_robust,
        reconfig_steps: transit.steps as u64,
        reconfig_peak_mlu: transit.naive_peak_mlu,
        reconfig_greedy_peak_mlu: transit.greedy_peak_mlu,
    }))
}

/// Runs a scenario's optional scale stage: record the instance's size
/// counts plus the workspace and FIB arena high-water marks reached while
/// solving it. Size counts are bit-diffed; the byte peaks are excluded
/// from [`result_drift`] because they are exactly what the tile knob is
/// supposed to change (and, in chain mode, reflect the chain-shared
/// workspace's history rather than one scenario).
fn scale_stage(
    scenario: &Scenario,
    solved: &SolvedPipeline,
    ws: &TeWorkspace,
) -> Option<ScaleScenarioResult> {
    if !scenario.scale {
        return None;
    }
    let table = solved.routing.forwarding_table();
    Some(ScaleScenarioResult {
        nodes: solved.network.node_count() as u64,
        links: solved.network.link_count() as u64,
        dests: solved.traffic.destinations().len() as u64,
        fib_entries: table.entry_count() as u64,
        peak_arena_bytes: ws.arena_bytes() as u64,
        peak_fib_bytes: table.arena_bytes() as u64,
    })
}

/// Assembles the per-scenario measurements from a solved pipeline.
fn measure(
    scenario: &Scenario,
    solved: &SolvedPipeline,
    sim: Option<SimScenarioResult>,
    failure: Option<FailureScenarioResult>,
    scale: Option<ScaleScenarioResult>,
    started: Instant,
) -> ScenarioResult {
    ScenarioResult {
        scenario: scenario.clone(),
        mlu: solved.routing.max_link_utilization(&solved.network),
        utility: solved.routing.normalized_utility(&solved.network),
        iterations: solved.routing.iterations(),
        nem_converged: solved.routing.nem_converged(),
        sim,
        failure,
        scale,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one scenario end to end with the default (calendar) sim scheduler:
/// materialize → solve → (optionally) simulate → measure.
///
/// # Errors
///
/// Returns the stringified solver error (e.g. infeasible demands at the
/// requested load) or simulator error.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, String> {
    run_scenario_in(scenario, SchedulerKind::Calendar, &mut SimWorkspace::new())
}

/// [`run_scenario`] with an explicit sim scheduler and a caller-provided
/// simulator workspace (reused allocation-free across scenarios on the
/// serial path). The solve itself runs cold in a fresh [`TeWorkspace`].
///
/// # Errors
///
/// Same contract as [`run_scenario`].
pub fn run_scenario_in(
    scenario: &Scenario,
    sim_scheduler: SchedulerKind,
    sim_ws: &mut SimWorkspace,
) -> Result<ScenarioResult, String> {
    let options = BatchOptions {
        sim_scheduler,
        ..BatchOptions::default()
    };
    run_scenario_opts(scenario, &options, sim_ws, &mut SpfStats::default())
}

/// The cold-solve kernel shared by [`run_scenario_in`] and the
/// [`BatchOptions::cold_solves`] lanes of [`run_batch`]: a fresh
/// [`TeWorkspace`] per scenario, configured with the batch's tile knob.
fn run_scenario_opts(
    scenario: &Scenario,
    options: &BatchOptions,
    sim_ws: &mut SimWorkspace,
    spf: &mut SpfStats,
) -> Result<ScenarioResult, String> {
    let started = Instant::now();
    let mut ws = TeWorkspace::new();
    ws.set_tile_size(options.tile);
    ws.set_incremental(!options.full_rebuild);
    let mut probes = FailureProbes::new(options.full_rebuild);
    let solved = solve_pipeline(scenario, &mut ws, options, spf)?;
    let failure = failure_stage(
        scenario,
        &solved,
        &mut ws,
        &mut RobustMemo::new(),
        &mut probes,
        options,
        spf,
    )?;
    let sim = sim_stage(scenario, &solved, options.sim_scheduler, sim_ws)?;
    let scale = scale_stage(scenario, &solved, &ws);
    add_spf(spf, ws.spf_stats());
    add_spf(spf, probes.spf_stats());
    Ok(measure(scenario, &solved, sim, failure, scale, started))
}

/// A scenario's outcome tagged with its original batch index so the caller
/// can restore submission order after the parallel chain fan-out.
type IndexedOutcome = (usize, Scenario, Result<ScenarioResult, String>);

/// Runs one warm-start chain serially: every scenario shares the chain's
/// workspace pair, and scenarios with equal solve keys (identical up to the
/// sim stage) share one pipeline solve. Returns each scenario tagged with
/// its original batch index so the caller can restore submission order.
fn run_chain(
    chain: Vec<(usize, Scenario)>,
    options: &BatchOptions,
) -> (Vec<IndexedOutcome>, SpfStats) {
    let mut ws = TeWorkspace::new();
    ws.set_tile_size(options.tile);
    ws.set_incremental(!options.full_rebuild);
    let mut sim_ws = SimWorkspace::new();
    // One probe pair per chain: every failure-stage circuit of the chain
    // rides mask round-trips on the same retained engine state.
    let mut probes = FailureProbes::new(options.full_rebuild);
    let mut spf = SpfStats::default();
    // Chains are short (one entry per load × sim/failure point), so
    // linear-scan memos keyed by solve key beat hashing.
    let mut memo: Vec<(String, Result<SolvedPipeline, String>)> = Vec::new();
    let mut robust_memo = RobustMemo::new();
    let mut out = Vec::with_capacity(chain.len());
    for (index, scenario) in chain {
        let started = Instant::now();
        let key = scenario.solve_key();
        if !memo.iter().any(|(k, _)| *k == key) {
            let solved = solve_pipeline(&scenario, &mut ws, options, &mut spf);
            memo.push((key.clone(), solved));
        }
        let pos = memo
            .iter()
            .position(|(k, _)| *k == key)
            .expect("solve key was just memoized");
        let outcome = match &memo[pos].1 {
            Err(e) => Err(e.clone()),
            Ok(solved) => failure_stage(
                &scenario,
                solved,
                &mut ws,
                &mut robust_memo,
                &mut probes,
                options,
                &mut spf,
            )
            .and_then(|failure| {
                sim_stage(&scenario, solved, options.sim_scheduler, &mut sim_ws).map(|sim| {
                    let scale = scale_stage(&scenario, solved, &ws);
                    measure(&scenario, solved, sim, failure, scale, started)
                })
            }),
        };
        out.push((index, scenario, outcome));
    }
    add_spf(&mut spf, ws.spf_stats());
    add_spf(&mut spf, probes.spf_stats());
    (out, spf)
}

/// Runs a batch of scenarios, in parallel unless
/// [`BatchOptions::serial`] is set.
///
/// By default scenarios are grouped into warm-start chains (see the module
/// docs): rayon fans out across chains, each chain runs serially on shared
/// workspaces, and scenarios identical up to the sim stage share one solve.
/// [`BatchOptions::cold_solves`] reverts to one isolated solve per
/// scenario.
///
/// Results and failures come back in scenario order regardless of the
/// parallel schedule or chain grouping, and every field except the
/// wall-clock times is a pure function of the scenario (each run re-seeds
/// its own generators), so a sweep is reproducible run-to-run,
/// machine-to-machine, and mode-to-mode.
pub fn run_batch(scenarios: Vec<Scenario>, options: &BatchOptions) -> BatchReport {
    let started = Instant::now();
    let threads = if options.serial {
        1
    } else {
        rayon::current_num_threads() as u64
    };
    let mut spf_total = SpfStats::default();
    let mut outcomes: Vec<IndexedOutcome> = if options.cold_solves {
        if options.serial {
            // Serial lane: one simulator workspace amortised over the whole
            // batch (allocation-free sim stages after the first).
            let mut sim_ws = SimWorkspace::new();
            scenarios
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    let outcome = run_scenario_opts(&s, options, &mut sim_ws, &mut spf_total);
                    (i, s, outcome)
                })
                .collect()
        } else {
            let with_stats: Vec<(IndexedOutcome, SpfStats)> = scenarios
                .into_par_iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut spf = SpfStats::default();
                    let outcome =
                        run_scenario_opts(&s, options, &mut SimWorkspace::new(), &mut spf);
                    ((i, s, outcome), spf)
                })
                .collect();
            with_stats
                .into_iter()
                .map(|(outcome, spf)| {
                    add_spf(&mut spf_total, spf);
                    outcome
                })
                .collect()
        }
    } else {
        // Dependency-aware mode: group into chains keyed by everything but
        // the load and sim axes, preserving first-appearance chain order
        // and submission order within each chain.
        let mut chains: Vec<Vec<(usize, Scenario)>> = Vec::new();
        let mut chain_index: HashMap<String, usize> = HashMap::new();
        for (i, s) in scenarios.into_iter().enumerate() {
            match chain_index.get(&s.chain_key()) {
                Some(&c) => chains[c].push((i, s)),
                None => {
                    chain_index.insert(s.chain_key(), chains.len());
                    chains.push(vec![(i, s)]);
                }
            }
        }
        let per_chain: Vec<(Vec<IndexedOutcome>, SpfStats)> = if options.serial {
            chains.into_iter().map(|c| run_chain(c, options)).collect()
        } else {
            chains
                .into_par_iter()
                .map(|c| run_chain(c, options))
                .collect()
        };
        per_chain
            .into_iter()
            .flat_map(|(outcomes, spf)| {
                add_spf(&mut spf_total, spf);
                outcomes
            })
            .collect()
    };
    outcomes.sort_by_key(|(i, _, _)| *i);

    let mut results = Vec::new();
    let mut failures = Vec::new();
    for (_, scenario, outcome) in outcomes {
        match outcome {
            Ok(result) => results.push(result),
            Err(error) => failures.push(ScenarioFailure { scenario, error }),
        }
    }
    BatchReport {
        schema_version: BATCH_SCHEMA_VERSION,
        results,
        failures,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
        threads,
        tile_size: options.tile.map(|t| t as u64),
        spf: (spf_total.builds > 0).then(|| SpfStatsResult::from_stats(spf_total)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TrafficModel;
    use crate::scenario::{ObjectiveSpec, ScenarioGrid, SolverSpec, TopologySpec, TrafficSpec};

    #[test]
    fn single_scenario_runs_and_reports() {
        let scenario = Scenario::new(
            TopologySpec::Fig1,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed: 3,
                load: 0.2,
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfeFast,
        );
        let result = run_scenario(&scenario).expect("fig1 at load 0.2 is feasible");
        assert!(result.mlu > 0.0 && result.mlu < 1.0);
        assert!(result.iterations > 0);
        assert_eq!(result.scenario, scenario);
    }

    #[test]
    fn infeasible_scenario_is_reported_not_dropped() {
        let scenario = Scenario::new(
            TopologySpec::Fig1,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed: 3,
                load: 50.0, // 50× total capacity cannot be routed
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfeFast,
        );
        let report = run_batch(vec![scenario], &BatchOptions::default());
        assert!(report.results.is_empty());
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn result_drift_ignores_wall_clock_but_catches_everything_else() {
        let scenarios = ScenarioGrid::new()
            .topologies([TopologySpec::Fig1])
            .seeds([1, 2])
            .loads([0.15])
            .build();
        let base = run_batch(scenarios.clone(), &BatchOptions::default());
        let mut other = run_batch(
            scenarios,
            &BatchOptions {
                serial: true,
                ..BatchOptions::default()
            },
        );
        // Same deterministic results, different wall clock/threads: clean.
        assert!(
            base.result_drift(&other).is_empty(),
            "{:?}",
            base.result_drift(&other)
        );

        // Any result field flip is drift.
        other.results[0].mlu += 1e-15;
        assert_eq!(base.result_drift(&other).len(), 1);
        other.results[0].mlu = base.results[0].mlu;
        other.results[1].iterations += 1;
        assert_eq!(base.result_drift(&other).len(), 1);
        other.results.pop();
        assert!(!base.result_drift(&other).is_empty());
    }

    #[test]
    fn warm_chains_match_cold_solves_bit_for_bit() {
        // Two chains (fig4, abilene), each spanning two loads × two sim
        // durations: exercises workspace reuse along the load axis AND
        // solve sharing across sim durations.
        let scenarios = ScenarioGrid::new()
            .topologies([TopologySpec::Fig4, TopologySpec::Abilene])
            .seeds([1])
            .loads([0.1, 0.15])
            .sim_durations([1.0, 2.0])
            .build();
        assert_eq!(scenarios.len(), 8);
        let cold = run_batch(
            scenarios.clone(),
            &BatchOptions {
                cold_solves: true,
                ..BatchOptions::default()
            },
        );
        let warm = run_batch(scenarios, &BatchOptions::default());
        assert_eq!(warm.results.len(), 8);
        let drift = cold.result_drift(&warm);
        assert!(drift.is_empty(), "warm vs cold drift: {drift:?}");
    }

    #[test]
    fn ft_rows_solve_and_full_rebuild_matches_incremental_bit_for_bit() {
        let scenarios = ScenarioGrid::new()
            .topologies([TopologySpec::Fig4])
            .seeds([1])
            .loads([0.15])
            .solvers([SolverSpec::FrankWolfeFast, SolverSpec::FortzThorup])
            .build();
        let incremental = run_batch(scenarios.clone(), &BatchOptions::default());
        let full = run_batch(
            scenarios,
            &BatchOptions {
                full_rebuild: true,
                ..BatchOptions::default()
            },
        );
        assert_eq!(incremental.results.len(), 2);
        let ft = &incremental.results[1];
        assert!(ft.scenario.id.ends_with("+ft"));
        assert!(ft.mlu > 0.0 && ft.mlu < 1.0);
        assert!(ft.utility.is_finite());
        assert!(ft.nem_converged, "vacuous for FT rows");
        let drift = incremental.result_drift(&full);
        assert!(drift.is_empty(), "full-rebuild drift: {drift:?}");
    }

    #[test]
    fn ft_rows_reject_the_failure_stage() {
        let scenarios = ScenarioGrid::new()
            .topologies([TopologySpec::Abilene])
            .seeds([1])
            .loads([0.05])
            .solvers([SolverSpec::FortzThorup])
            .failure_circuits([0])
            .build();
        let report = run_batch(scenarios, &BatchOptions::default());
        assert!(report.results.is_empty());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].error.contains("SPEF solvers only"));
    }

    #[test]
    fn chain_grouping_preserves_submission_order() {
        // Interleave two chains by hand; results must come back in the
        // submitted order, not grouped by chain.
        let mut scenarios = ScenarioGrid::new()
            .topologies([TopologySpec::Fig1, TopologySpec::Fig4])
            .seeds([1])
            .loads([0.1, 0.15])
            .build();
        scenarios.swap(1, 2); // fig1-l0.1, fig4-l0.1, fig1-l0.15, fig4-l0.15
        let ids: Vec<String> = scenarios.iter().map(|s| s.id.clone()).collect();
        let report = run_batch(scenarios, &BatchOptions::default());
        let got: Vec<String> = report
            .results
            .iter()
            .map(|r| r.scenario.id.clone())
            .collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let scenarios = ScenarioGrid::new()
            .topologies([TopologySpec::Fig1, TopologySpec::Fig4])
            .seeds([1, 2])
            .loads([0.15])
            .build();
        let par = run_batch(scenarios.clone(), &BatchOptions::default());
        let ser = run_batch(
            scenarios,
            &BatchOptions {
                serial: true,
                ..BatchOptions::default()
            },
        );
        assert_eq!(par.results.len(), ser.results.len());
        for (a, b) in par.results.iter().zip(&ser.results) {
            assert_eq!(a.scenario.id, b.scenario.id, "order is preserved");
            assert_eq!(a.mlu, b.mlu);
            assert_eq!(a.utility, b.utility);
            assert_eq!(a.iterations, b.iterations);
        }
    }
}
