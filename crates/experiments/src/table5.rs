//! TABLE V: equal-cost-path census on CERNET2 — for each ingress–egress
//! pair, how many equal-cost shortest paths the routing offers, at network
//! loads ≈ 0.13 / 0.17 / 0.21.
//!
//! Paper findings reproduced: OSPF's census is load-independent (InvCap
//! weights never change); SPEF's multipath pair count grows with load
//! ("SPEF routing is more likely to use multiple paths to balance traffic
//! at higher loads").

use spef_baselines::ospf;
use spef_core::{build_dags, metrics::PathCensus, Objective, SpefError, TeInstance, TeSolver};
use spef_topology::{standard, TrafficMatrix};

use crate::report::{CsvFile, ExperimentResult, TextTable};
use crate::{scale, Quality};

/// The paper's load points, clamped to the feasibility boundary of our
/// reconstructed CERNET2 instance.
pub fn load_points(quality: Quality) -> Result<Vec<f64>, SpefError> {
    let net = standard::cernet2();
    let shape = TrafficMatrix::gravity(
        &net,
        crate::fig9::CERNET2_SIGMA,
        crate::fig9::CERNET2_TM_SEED,
    );
    let lmax = scale::max_feasible_load(&net, &shape, 0.05)?;
    let targets: &[f64] = match quality {
        Quality::Full => &[0.13, 0.17, 0.21],
        Quality::Quick => &[0.13, 0.21],
    };
    Ok(targets
        .iter()
        .enumerate()
        .map(|(i, &t)| t.min(lmax * (0.55 + 0.4 * i as f64 / 2.0)))
        .collect())
}

fn census_row(census: &PathCensus) -> Vec<usize> {
    (1..=4).map(|i| census.n(i)).collect()
}

/// Runs the TABLE V reproduction.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let net = standard::cernet2();
    let shape = TrafficMatrix::gravity(
        &net,
        crate::fig9::CERNET2_SIGMA,
        crate::fig9::CERNET2_TM_SEED,
    );
    let loads = load_points(quality)?;

    let mut table = TextTable::new(
        "TABLE V — number of equal-cost paths per ingress-egress pair (Cernet2)",
        &["routing", "load", "n1", "n2", "n3", "n4"],
    );
    let mut rows = Vec::new();

    // OSPF: identical at every load.
    let invcap = ospf::invcap_weights(&net);
    let all_dests: Vec<_> = net.graph().nodes().collect();
    let ospf_dags = build_dags(net.graph(), &invcap, &all_dests, 0.0)?;
    let ospf_census = PathCensus::from_dags(&ospf_dags);
    let ospf_row = census_row(&ospf_census);
    table.push_row(
        ["OSPF".to_string(), "any".to_string()]
            .into_iter()
            .chain(ospf_row.iter().map(|n| n.to_string()))
            .collect(),
    );
    rows.push(
        std::iter::once(0.0)
            .chain(ospf_row.iter().map(|&n| n as f64))
            .collect(),
    );

    // SPEF: census of the first-weight DAGs per load.
    let obj = Objective::proportional(net.link_count());
    for &load in &loads {
        let tm = shape.scaled_to_network_load(&net, load);
        let routing = quality
            .spef_config()
            .solve(TeInstance::new(&net, &tm, &obj))?;
        // Census over ALL ordered pairs: rebuild DAGs for every node as
        // destination under the deployed first weights and tolerance.
        let dags = build_dags(
            net.graph(),
            routing.first_weights(),
            &all_dests,
            routing.dijkstra_tolerance(),
        )?;
        let census = PathCensus::from_dags(&dags);
        let row = census_row(&census);
        table.push_row(
            ["SPEF".to_string(), format!("{load:.3}")]
                .into_iter()
                .chain(row.iter().map(|n| n.to_string()))
                .collect(),
        );
        rows.push(
            std::iter::once(load)
                .chain(row.iter().map(|&n| n as f64))
                .collect(),
        );
    }

    Ok(ExperimentResult {
        id: "table5",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "table5.csv",
            &["load", "n1", "n2", "n3", "n4"],
            &rows,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_covers_all_pairs_and_spef_uses_multipath() {
        let r = run(Quality::Quick).unwrap();
        let rows = &r.tables[0].rows;
        // First row is OSPF; there are 20×19 = 380 ordered pairs.
        let total: usize = rows[0][2..]
            .iter()
            .map(|c| c.parse::<usize>().unwrap())
            .sum();
        assert!(total <= 380);
        assert!(total >= 300, "most pairs have <= 4 equal-cost paths");
        // SPEF rows: multipath pairs (n2+n3+n4) at the highest load are at
        // least those at the lowest load, and at least OSPF's.
        let multi = |row: &[String]| -> usize {
            row[3..].iter().map(|c| c.parse::<usize>().unwrap()).sum()
        };
        let ospf_multi = multi(&rows[0]);
        let lo = multi(&rows[1]);
        let hi = multi(rows.last().unwrap());
        assert!(hi >= lo, "multipath pairs shrank with load: {lo} → {hi}");
        assert!(hi >= ospf_multi, "SPEF multipath {hi} < OSPF {ospf_multi}");
    }
}
