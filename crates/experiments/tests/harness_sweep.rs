//! Integration tests of the scenario-sweep harness: determinism across
//! runs, JSON round-tripping of the batch report, and the packet-level
//! `sim` scenario family (scheduler-independent results, old-baseline
//! compatibility).

use spef_experiments::harness::{run_batch, BatchOptions, BatchReport};
use spef_experiments::scenario::{
    FailureSpec, ObjectiveSpec, Scenario, ScenarioGrid, SimSpec, SolverSpec, TopologySpec,
    TrafficModel, TrafficSpec,
};
use spef_netsim::SchedulerKind;

/// A 3-scenario sweep: fig1 at two seeds plus Abilene.
fn three_scenarios() -> Vec<Scenario> {
    let spec = |topology: TopologySpec, seed: u64| {
        Scenario::new(
            topology,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed,
                load: 0.15,
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfeFast,
        )
    };
    vec![
        spec(TopologySpec::Fig1, 1),
        spec(TopologySpec::Fig1, 2),
        spec(TopologySpec::Abilene, 1),
    ]
}

#[test]
fn sweep_is_deterministic_across_runs() {
    let first = run_batch(three_scenarios(), &BatchOptions::default());
    let second = run_batch(three_scenarios(), &BatchOptions::default());

    assert_eq!(first.results.len(), 3, "all scenarios feasible");
    assert!(first.failures.is_empty());
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a.scenario, b.scenario);
        // Every measurement except wall-clock is a pure function of the
        // scenario, bit for bit.
        assert_eq!(a.mlu, b.mlu, "{}", a.scenario.id);
        assert_eq!(a.utility, b.utility, "{}", a.scenario.id);
        assert_eq!(a.iterations, b.iterations, "{}", a.scenario.id);
        assert_eq!(a.nem_converged, b.nem_converged, "{}", a.scenario.id);
    }
}

#[test]
fn results_are_physically_sane() {
    let report = run_batch(three_scenarios(), &BatchOptions::default());
    for r in &report.results {
        assert!(
            r.mlu > 0.0 && r.mlu < 1.0,
            "{}: MLU {}",
            r.scenario.id,
            r.mlu
        );
        assert!(r.iterations > 0, "{}", r.scenario.id);
        assert!(r.wall_ms > 0.0, "{}", r.scenario.id);
    }
}

#[test]
fn batch_report_roundtrips_through_json() {
    let report = run_batch(three_scenarios(), &BatchOptions::default());
    let json = report.to_json();
    let back = BatchReport::from_json(&json).expect("report parses back");
    // Full structural equality: scenarios (nested enums included), all
    // measurements, and the wall-clock fields survive serialization.
    assert_eq!(back, report);

    // The id field stays the stable join key tooling can rely on.
    assert!(json.contains("\"fig1+ft-s1-l0.15+q1b1+fw-fast\""));
    assert!(json.contains("\"schema_version\": 1"));
}

/// A small sim-staged sweep: fig4 clean plus fig4 at a lossier point.
fn sim_scenarios() -> Vec<Scenario> {
    let spec = |load: f64, duration: f64| {
        Scenario::new(
            TopologySpec::Fig4,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed: 1,
                load,
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfeFast,
        )
        .with_sim(SimSpec {
            duration,
            warmup: duration * 0.1,
            unit_bps: 1e6,
            seed: 0x5117,
        })
    };
    vec![spec(0.05, 2.0), spec(0.1, 2.0), spec(0.1, 4.0)]
}

#[test]
fn sim_sweep_is_deterministic_and_scheduler_independent() {
    // Parallel calendar, serial calendar, and parallel heap must produce
    // bit-identical deterministic fields — the sweep-level widening of the
    // netsim equivalence proptests, through the whole solve+simulate
    // pipeline.
    let calendar = run_batch(sim_scenarios(), &BatchOptions::default());
    assert_eq!(calendar.results.len(), 3, "{:?}", calendar.failures);
    for r in &calendar.results {
        let sim = r.sim.as_ref().expect("sim stage ran");
        assert!(sim.generated_packets > 0);
        assert!(sim.delivered_packets > 0);
        assert!(sim.max_link_load_bps > 0.0);
        assert!(sim.total_link_load_bps >= sim.max_link_load_bps);
        assert!(sim.peak_packet_slots > 0);
    }
    let serial = run_batch(
        sim_scenarios(),
        &BatchOptions {
            serial: true,
            ..BatchOptions::default()
        },
    );
    let heap = run_batch(
        sim_scenarios(),
        &BatchOptions {
            sim_scheduler: SchedulerKind::BinaryHeap,
            ..BatchOptions::default()
        },
    );
    assert!(
        calendar.result_drift(&serial).is_empty(),
        "serial drift: {:?}",
        calendar.result_drift(&serial)
    );
    assert!(
        calendar.result_drift(&heap).is_empty(),
        "heap drift: {:?}",
        calendar.result_drift(&heap)
    );
}

#[test]
fn sim_results_roundtrip_and_drift_catches_sim_fields() {
    let report = run_batch(sim_scenarios(), &BatchOptions::default());
    let back = BatchReport::from_json(&report.to_json()).expect("parses back");
    assert_eq!(back, report);

    // Any sim field flip is drift.
    let mut other = back.clone();
    other.results[0].sim.as_mut().unwrap().delivered_packets += 1;
    assert_eq!(report.result_drift(&other).len(), 1);
    other = back.clone();
    other.results[1].sim.as_mut().unwrap().mean_delay += 1e-15;
    assert_eq!(report.result_drift(&other).len(), 1);
    // Dropping the stage entirely is drift too.
    other = back;
    other.results[2].sim = None;
    assert_eq!(report.result_drift(&other).len(), 1);
}

#[test]
fn pre_sim_reports_still_parse_and_sim_less_results_omit_the_field() {
    // The committed PR 2/PR 3 baselines predate the sim stage; their
    // `ScenarioResult` objects carry no `sim` key and must keep parsing
    // (the CI regression gate reads them on every PR).
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_post_pr2_batched_engine.json"),
    )
    .expect("committed baseline readable");
    let baseline = BatchReport::from_json(&text).expect("pre-sim baseline parses");
    assert!(baseline.results.iter().all(|r| r.sim.is_none()));

    // And a sim-less run serializes without the key, so regenerating the
    // old grid still byte-matches the old schema shape.
    let report = run_batch(three_scenarios(), &BatchOptions::default());
    let json = report.to_json();
    assert!(!json.contains("\"sim\""));
}

/// A small failure-staged sweep: Abilene at one load, two failed circuits
/// (sharing the intact solve) with a tiny robust budget.
fn failure_scenarios() -> Vec<Scenario> {
    ScenarioGrid::new()
        .topologies([TopologySpec::Abilene])
        .seeds([1])
        .loads([0.05])
        .failure_circuits([0, 7])
        .robust_evals(40)
        .build()
}

#[test]
fn failure_sweep_is_deterministic_and_mode_independent() {
    // Warm chains (shared intact solve + chain-memoized robust search),
    // serial warm, and isolated cold solves must produce bit-identical
    // deterministic fields — the failure family's regression contract.
    let warm = run_batch(failure_scenarios(), &BatchOptions::default());
    assert_eq!(warm.results.len(), 2, "{:?}", warm.failures);
    for r in &warm.results {
        let f = r.failure.as_ref().expect("failure stage ran");
        // Re-optimisation is the steady-state lower bound.
        assert!(f.mlu_reopt <= f.mlu_stale + 1e-6);
        assert!(f.mlu_reopt <= f.mlu_ospf + 1e-6);
        assert!(f.reopt_iterations > 0);
        // The robust worst case covers this circuit's failure, so it
        // cannot beat the per-failure optimum.
        assert!(f.mlu_robust >= f.mlu_reopt - 1e-9);
        // The transient starts at the stale state, so both peaks
        // dominate it; the migration pushes at least one weight.
        assert!(f.reconfig_steps > 0);
        assert!(f.reconfig_peak_mlu >= f.mlu_stale - 1e-12);
        assert!(f.reconfig_greedy_peak_mlu >= f.mlu_stale - 1e-12);
    }
    let cold = run_batch(
        failure_scenarios(),
        &BatchOptions {
            cold_solves: true,
            ..BatchOptions::default()
        },
    );
    let serial = run_batch(
        failure_scenarios(),
        &BatchOptions {
            serial: true,
            ..BatchOptions::default()
        },
    );
    assert!(
        warm.result_drift(&cold).is_empty(),
        "cold drift: {:?}",
        warm.result_drift(&cold)
    );
    assert!(
        warm.result_drift(&serial).is_empty(),
        "serial drift: {:?}",
        warm.result_drift(&serial)
    );
}

#[test]
fn failure_results_roundtrip_and_drift_catches_failure_fields() {
    let report = run_batch(failure_scenarios(), &BatchOptions::default());
    let back = BatchReport::from_json(&report.to_json()).expect("parses back");
    assert_eq!(back, report);

    // Any failure field flip is drift.
    let mut other = back.clone();
    other.results[0].failure.as_mut().unwrap().mlu_stale += 1e-15;
    assert_eq!(report.result_drift(&other).len(), 1);
    other = back.clone();
    other.results[1].failure.as_mut().unwrap().reopt_iterations += 1;
    assert_eq!(report.result_drift(&other).len(), 1);
    // Dropping the stage entirely is drift too.
    other = back;
    other.results[0].failure = None;
    assert_eq!(report.result_drift(&other).len(), 1);
}

#[test]
fn spf_metadata_is_surfaced_but_never_diffed() {
    // The batch-level SPF counters are execution metadata: present on any
    // run that routed traffic, round-tripping through JSON, but outside
    // the bit-diffed result fields — an engine-mode flip (masked topology
    // deltas vs full rebuilds) moves the counters while `result_drift`
    // stays empty.
    let masked = run_batch(failure_scenarios(), &BatchOptions::default());
    let spf = masked.spf.expect("failure sweep carries spf metadata");
    assert!(spf.builds > 0);
    assert!(
        spf.masked_links > 0,
        "failure probes never masked a link: {spf:?}"
    );
    let back = BatchReport::from_json(&masked.to_json()).expect("parses back");
    assert_eq!(back, masked);

    let rebuild = run_batch(
        failure_scenarios(),
        &BatchOptions {
            full_rebuild: true,
            ..BatchOptions::default()
        },
    );
    let rebuild_spf = rebuild.spf.expect("rebuild sweep carries spf metadata");
    assert_eq!(rebuild_spf.topology_builds, 0);
    assert_ne!(spf, rebuild_spf, "engine modes should differ in SPF work");
    assert!(
        masked.result_drift(&rebuild).is_empty(),
        "spf metadata leaked into the diffed fields: {:?}",
        masked.result_drift(&rebuild)
    );

    // The committed pre-PR 10 baselines predate the field; they must keep
    // parsing with the metadata absent (the CI regression gate reads them
    // on every PR).
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_post_pr7_warm_failures.json"),
    )
    .expect("committed baseline readable");
    let baseline = BatchReport::from_json(&text).expect("pre-spf baseline parses");
    assert!(baseline.spf.is_none());
}

#[test]
fn out_of_range_circuit_is_a_scenario_failure_not_a_panic() {
    let scenario = Scenario::new(
        TopologySpec::Abilene,
        TrafficSpec {
            model: TrafficModel::FortzThorup,
            seed: 1,
            load: 0.05,
        },
        ObjectiveSpec { q: 1.0, beta: 1.0 },
        SolverSpec::FrankWolfeFast,
    )
    .with_failure(FailureSpec {
        circuit: 999, // Abilene has 14 duplex circuits
        robust_evals: 10,
        robust_seed: 1,
    });
    let report = run_batch(vec![scenario], &BatchOptions::default());
    assert!(report.results.is_empty());
    assert_eq!(report.failures.len(), 1);
    assert!(report.failures[0].error.contains("out of range"));
}

#[test]
fn pre_failure_reports_still_parse_and_failure_less_results_omit_the_field() {
    // The committed PR 6 baselines predate the failure stage; their
    // `ScenarioResult` objects carry no `failure` key and must keep
    // parsing (the CI regression gate reads them on every PR).
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_post_pr6_warm_solvers.json"),
    )
    .expect("committed baseline readable");
    let baseline = BatchReport::from_json(&text).expect("pre-failure baseline parses");
    assert!(baseline.results.iter().all(|r| r.failure.is_none()));

    // And a failure-less run serializes without the key, so regenerating
    // the old grids still byte-matches the old schema shape.
    let report = run_batch(three_scenarios(), &BatchOptions::default());
    assert!(!report.to_json().contains("\"failure\""));
}

#[test]
fn grid_sweep_runs_mixed_feasibility_batches() {
    // One infeasible scenario (load 5.0 = 5x capacity) among feasible ones:
    // the batch completes, failures are recorded, results keep their order.
    let scenarios = ScenarioGrid::new()
        .topologies([TopologySpec::Fig1])
        .seeds([1])
        .loads([0.15, 5.0])
        .build();
    let report = run_batch(scenarios, &BatchOptions::default());
    assert_eq!(report.results.len(), 1);
    assert_eq!(report.failures.len(), 1);
    assert!(report.failures[0].scenario.traffic.load > 1.0);
}
