//! Integration tests of the scenario-sweep harness: determinism across
//! runs and JSON round-tripping of the batch report.

use spef_experiments::harness::{run_batch, BatchOptions, BatchReport};
use spef_experiments::scenario::{
    ObjectiveSpec, Scenario, ScenarioGrid, SolverSpec, TopologySpec, TrafficModel, TrafficSpec,
};

/// A 3-scenario sweep: fig1 at two seeds plus Abilene.
fn three_scenarios() -> Vec<Scenario> {
    let spec = |topology: TopologySpec, seed: u64| {
        Scenario::new(
            topology,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed,
                load: 0.15,
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfeFast,
        )
    };
    vec![
        spec(TopologySpec::Fig1, 1),
        spec(TopologySpec::Fig1, 2),
        spec(TopologySpec::Abilene, 1),
    ]
}

#[test]
fn sweep_is_deterministic_across_runs() {
    let first = run_batch(three_scenarios(), &BatchOptions::default());
    let second = run_batch(three_scenarios(), &BatchOptions::default());

    assert_eq!(first.results.len(), 3, "all scenarios feasible");
    assert!(first.failures.is_empty());
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a.scenario, b.scenario);
        // Every measurement except wall-clock is a pure function of the
        // scenario, bit for bit.
        assert_eq!(a.mlu, b.mlu, "{}", a.scenario.id);
        assert_eq!(a.utility, b.utility, "{}", a.scenario.id);
        assert_eq!(a.iterations, b.iterations, "{}", a.scenario.id);
        assert_eq!(a.nem_converged, b.nem_converged, "{}", a.scenario.id);
    }
}

#[test]
fn results_are_physically_sane() {
    let report = run_batch(three_scenarios(), &BatchOptions::default());
    for r in &report.results {
        assert!(
            r.mlu > 0.0 && r.mlu < 1.0,
            "{}: MLU {}",
            r.scenario.id,
            r.mlu
        );
        assert!(r.iterations > 0, "{}", r.scenario.id);
        assert!(r.wall_ms > 0.0, "{}", r.scenario.id);
    }
}

#[test]
fn batch_report_roundtrips_through_json() {
    let report = run_batch(three_scenarios(), &BatchOptions::default());
    let json = report.to_json();
    let back = BatchReport::from_json(&json).expect("report parses back");
    // Full structural equality: scenarios (nested enums included), all
    // measurements, and the wall-clock fields survive serialization.
    assert_eq!(back, report);

    // The id field stays the stable join key tooling can rely on.
    assert!(json.contains("\"fig1+ft-s1-l0.15+q1b1+fw-fast\""));
    assert!(json.contains("\"schema_version\": 1"));
}

#[test]
fn grid_sweep_runs_mixed_feasibility_batches() {
    // One infeasible scenario (load 5.0 = 5x capacity) among feasible ones:
    // the batch completes, failures are recorded, results keep their order.
    let scenarios = ScenarioGrid::new()
        .topologies([TopologySpec::Fig1])
        .seeds([1])
        .loads([0.15, 5.0])
        .build();
    let report = run_batch(scenarios, &BatchOptions::default());
    assert_eq!(report.results.len(), 1);
    assert_eq!(report.failures.len(), 1);
    assert!(report.failures[0].scenario.traffic.load > 1.0);
}
