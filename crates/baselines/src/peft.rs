//! Downward PEFT — the link-state protocol SPEF is compared against in
//! §V.D (Fig. 11).
//!
//! PEFT (Xu, Chiang, Rexford: "Link-state routing with hop-by-hop
//! forwarding achieves optimal traffic engineering", INFOCOM 2008) splits
//! traffic over **all** downward paths toward the destination — not only
//! the equal-cost shortest ones — with an exponential penalty on the extra
//! path length. Its *Downward PEFT* variant (the loop-free, computationally
//! efficient one actually proposed for deployment, which "does not provably
//! achieve optimal TE" per the SPEF paper's §VI) works as follows for a
//! destination `t` with per-node shortest distances `d(·)`:
//!
//! * a link `(u, v)` is *downward* iff `d(v) < d(u)`;
//! * each downward link carries penalty `h_uv = w_uv + d(v) − d(u) ≥ 0`
//!   (its extra cost over the shortest path);
//! * `Γ(t) = 1`, `Γ(u) = Σ_{(u,v) downward} Γ(v) · e^(−h_uv)`, and node
//!   `u` forwards to `v` with probability `Γ(v)·e^(−h_uv) / Γ(u)`.
//!
//! On equal-cost paths `h = 0`, so the split degenerates to path-count
//! weighting; on longer paths the exponential penalty applies. The key
//! behavioural contrast measured in Fig. 11: PEFT *uses fewer links* than
//! SPEF on these workloads but loads them more unevenly, because the
//! penalty concentrates traffic near the shortest paths while SPEF spreads
//! it uniformly over an engineered equal-cost set.

use spef_core::{metrics, FibSet, Flows, ForwardingTable, SpefError};
use spef_graph::{
    batch_distances_to, Csr, DistanceSet, EdgeId, NodeId, Parallelism, RoutingWorkspace,
};
use spef_topology::{Network, TrafficMatrix};

/// A Downward-PEFT routing of a traffic matrix under given link weights.
#[derive(Debug, Clone)]
pub struct PeftRouting {
    weights: Vec<f64>,
    flows: Flows,
    fib: ForwardingTable,
}

impl PeftRouting {
    /// Routes `traffic` with Downward-PEFT splitting under `weights`.
    ///
    /// For the SPEF-vs-PEFT comparison both protocols are driven by the
    /// same optimal first weights (see `DESIGN.md`), isolating the
    /// difference in their *splitting* behaviour.
    ///
    /// # Errors
    ///
    /// * [`SpefError::InvalidInput`] on size mismatches or an empty matrix,
    /// * [`SpefError::UnroutableDemand`] for disconnected demand pairs.
    pub fn route(
        network: &Network,
        traffic: &TrafficMatrix,
        weights: &[f64],
    ) -> Result<PeftRouting, SpefError> {
        if traffic.node_count() != network.node_count() {
            return Err(SpefError::InvalidInput(format!(
                "traffic matrix covers {} nodes, network has {}",
                traffic.node_count(),
                network.node_count()
            )));
        }
        if weights.len() != network.link_count() {
            return Err(SpefError::InvalidInput(format!(
                "weight vector has length {}, network has {} links",
                weights.len(),
                network.link_count()
            )));
        }
        let g = network.graph();
        let dests = traffic.destinations();
        if dests.is_empty() {
            return Err(SpefError::InvalidInput(
                "traffic matrix is empty".to_string(),
            ));
        }

        let n = g.node_count();
        let m = g.edge_count();
        let mut per_dest = Vec::with_capacity(dests.len());
        let mut aggregate = vec![0.0; m];
        // The FIB is built destination by destination straight into the
        // flat CSR arena; the per-node ratio rows below are scratch reused
        // across destinations, never retained.
        let mut fib = FibSet::new();
        fib.begin(n);

        // All per-destination distances in one batched sweep: weights are
        // validated once and the Dijkstra scratch is shared (parallel for
        // large destination sets).
        let in_csr = Csr::in_of(g);
        let mut ws = RoutingWorkspace::new();
        let mut dset = DistanceSet::new();
        batch_distances_to(
            g,
            &in_csr,
            weights,
            &dests,
            Parallelism::Auto,
            &mut ws,
            &mut dset,
        )?;
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut log_gamma = vec![f64::NEG_INFINITY; n];
        let mut ratios: Vec<Vec<(EdgeId, f64)>> = vec![Vec::new(); n];
        let mut incoming = vec![0.0f64; n];

        for (di, &t) in dests.iter().enumerate() {
            let dist = dset.row(di);
            // Nodes by decreasing distance (finite only).
            order.clear();
            order.extend(g.nodes().filter(|u| dist[u.index()].is_finite()));
            order.sort_by(|a, b| {
                dist[b.index()]
                    .total_cmp(&dist[a.index()])
                    .then_with(|| a.index().cmp(&b.index()))
            });

            // Γ recursion in log space, increasing distance.
            log_gamma.fill(f64::NEG_INFINITY);
            log_gamma[t.index()] = 0.0;
            for row in ratios.iter_mut() {
                row.clear();
            }
            for &u in order.iter().rev() {
                if u == t {
                    continue;
                }
                let terms = &mut ratios[u.index()];
                for &e in g.out_edges(u) {
                    let v = g.target(e);
                    let (du, dv) = (dist[u.index()], dist[v.index()]);
                    if !dv.is_finite() || dv >= du {
                        continue; // not downward
                    }
                    let h = weights[e.index()] + dv - du;
                    let term = -h + log_gamma[v.index()];
                    if term.is_finite() {
                        terms.push((e, term));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let max_t = terms
                    .iter()
                    .map(|&(_, x)| x)
                    .fold(f64::NEG_INFINITY, f64::max);
                let sum: f64 = terms.iter().map(|&(_, x)| (x - max_t).exp()).sum();
                let lg = max_t + sum.ln();
                log_gamma[u.index()] = lg;
                for slot in terms.iter_mut() {
                    slot.1 = (slot.1 - lg).exp();
                }
            }
            fib.push_destination(t, |u| ratios[u].as_slice());

            // Distribute demand in decreasing-distance order.
            let demands = traffic.demands_to(t);
            let mut flows = vec![0.0; m];
            incoming.fill(0.0);
            for (s, &d) in demands.iter().enumerate() {
                if d > 0.0 && !dist[s].is_finite() {
                    return Err(SpefError::UnroutableDemand {
                        source: NodeId::new(s),
                        destination: t,
                    });
                }
            }
            for &u in &order {
                if u == t {
                    continue;
                }
                let total = demands[u.index()] + incoming[u.index()];
                if total <= 0.0 {
                    continue;
                }
                if ratios[u.index()].is_empty() {
                    return Err(SpefError::UnroutableDemand {
                        source: u,
                        destination: t,
                    });
                }
                for &(e, r) in &ratios[u.index()] {
                    let f = total * r;
                    flows[e.index()] += f;
                    incoming[g.target(e).index()] += f;
                }
            }
            for (agg, f) in aggregate.iter_mut().zip(&flows) {
                *agg += f;
            }
            per_dest.push(flows);
        }

        let flows = Flows::assemble(dests, per_dest, aggregate);
        let fib = ForwardingTable::from(fib);
        Ok(PeftRouting {
            weights: weights.to_vec(),
            flows,
            fib,
        })
    }

    /// The link weights driving the penalties.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The resulting flows.
    pub fn flows(&self) -> &Flows {
        &self.flows
    }

    /// The PEFT forwarding table.
    pub fn forwarding_table(&self) -> &ForwardingTable {
        &self.fib
    }

    /// Maximum link utilization of the PEFT flows.
    pub fn max_link_utilization(&self, network: &Network) -> f64 {
        metrics::max_link_utilization(network, self.flows.aggregate())
    }

    /// Number of links carrying at least `threshold` of flow — the
    /// "links used for carrying traffic" count of Fig. 11.
    pub fn links_used(&self, threshold: f64) -> usize {
        self.flows
            .aggregate()
            .iter()
            .filter(|&&f| f > threshold)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_topology::standard;

    /// Diamond with a longer alternative: 0→3 direct paths of length 2 via
    /// node 1, and length 3 via nodes 2→... (asymmetric).
    fn asym_net() -> Network {
        let mut b = Network::builder("asym");
        let n0 = b.add_node("0", (0.0, 0.0));
        let n1 = b.add_node("1", (1.0, 1.0));
        let n2 = b.add_node("2", (1.0, -1.0));
        let n3 = b.add_node("3", (2.0, 0.0));
        b.add_duplex_link(n0, n1, 5.0);
        b.add_duplex_link(n1, n3, 5.0);
        b.add_duplex_link(n0, n2, 5.0);
        b.add_duplex_link(n2, n3, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn equal_paths_split_evenly() {
        let net = asym_net();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 2.0);
        let w = vec![1.0; net.link_count()];
        let peft = PeftRouting::route(&net, &tm, &w).unwrap();
        let f = peft.flows().aggregate();
        // Both 2-hop paths have h = 0: split 50/50.
        assert!((f[0] - 1.0).abs() < 1e-9);
        assert!((f[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn longer_paths_get_exponentially_less() {
        let net = asym_net();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        // Make the lower path 1 unit longer.
        let mut w = vec![1.0; net.link_count()];
        w[4] = 2.0; // edge 0→2
        let peft = PeftRouting::route(&net, &tm, &w).unwrap();
        let f = peft.flows().aggregate();
        // Lower path penalty h = 1: ratio e^{-1} : 1. PEFT still uses it —
        // that is the defining contrast with pure shortest-path routing.
        assert!(f[4] > 0.0);
        let expected = (-1.0f64).exp();
        assert!(
            (f[4] / f[0] - expected).abs() < 1e-9,
            "ratio {} vs {expected}",
            f[4] / f[0]
        );
    }

    #[test]
    fn upward_links_carry_nothing() {
        let net = asym_net();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let w = vec![1.0; net.link_count()];
        let peft = PeftRouting::route(&net, &tm, &w).unwrap();
        let f = peft.flows().aggregate();
        // Return edges (toward 0) are upward for destination 3.
        for e in [1usize, 3, 5, 7] {
            assert_eq!(f[e], 0.0, "upward edge {e} used");
        }
    }

    #[test]
    fn conservation_holds_per_destination() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let w = vec![1.0; net.link_count()];
        let peft = PeftRouting::route(&net, &tm, &w).unwrap();
        for &t in peft.flows().destinations() {
            let f = peft.flows().for_destination(t).unwrap();
            let div = net.graph().divergence(f);
            let demands = tm.demands_to(t);
            for node in net.graph().nodes() {
                if node == t {
                    continue;
                }
                assert!(
                    (div[node.index()] - demands[node.index()]).abs() < 1e-9,
                    "conservation at {node} toward {t}"
                );
            }
        }
    }

    #[test]
    fn peft_uses_more_paths_than_pure_shortest_path_routing() {
        // PEFT sends traffic on longer downward paths too; under unit
        // weights on Fig. 4, strictly more links carry flow than the
        // shortest-path-only count.
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let w = vec![1.0; net.link_count()];
        let peft = PeftRouting::route(&net, &tm, &w).unwrap();
        let ospf = crate::ospf::OspfRouting::route_with_weights(&net, &tm, &w).unwrap();
        let used = |flows: &[f64]| flows.iter().filter(|&&f| f > 1e-9).count();
        assert!(used(peft.flows().aggregate()) >= used(ospf.flows().aggregate()));
    }

    #[test]
    fn fib_ratios_sum_to_one() {
        let net = asym_net();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let w = vec![1.0; net.link_count()];
        let peft = PeftRouting::route(&net, &tm, &w).unwrap();
        let hops = peft
            .forwarding_table()
            .next_hops(0.into(), 3.into())
            .unwrap();
        let sum: f64 = hops.iter().map(|&(_, r)| r).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn links_used_threshold() {
        let net = asym_net();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let w = vec![1.0; net.link_count()];
        let peft = PeftRouting::route(&net, &tm, &w).unwrap();
        assert_eq!(peft.links_used(1e-9), 4);
        assert_eq!(peft.links_used(10.0), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let net = asym_net();
        let tm = TrafficMatrix::new(4);
        let w = vec![1.0; net.link_count()];
        assert!(PeftRouting::route(&net, &tm, &w).is_err());
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        assert!(PeftRouting::route(&net, &tm, &w[..2]).is_err());
    }
}
