//! Small helpers shared by the weight-search baselines.

use rand::rngs::StdRng;
use rand::Rng;

/// Fisher–Yates shuffle (the offline `rand` has no `SliceRandom` for this
/// version's API surface), shared by the Fortz–Thorup and robust weight
/// searches so their seeded scan orders come from one implementation.
pub(crate) fn shuffle(order: &mut [usize], rng: &mut StdRng) {
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        shuffle(&mut a, &mut StdRng::seed_from_u64(9));
        shuffle(&mut b, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements seeded at 9 should move");
    }
}
