//! The OSPF baseline: Cisco InvCap weights + even ECMP splitting.
//!
//! §V of the paper: "we compare the results of SPEF with that of OSPF,
//! which sets link weight inversely proportional to its capacity and evenly
//! splits the traffic over multiple equal-cost shortest paths."
//!
//! Note OSPF routing ignores capacities entirely; at high load its flows
//! exceed capacity (MLU > 1) — exactly the regime where Fig. 10 shows its
//! utility collapsing to −∞ while "SPEF still works".

use spef_core::{metrics, Flows, ForwardingTable, RoutingEngine, SpefError, SplitRule};
use spef_topology::{Network, TrafficMatrix};

/// Cisco InvCap weights: `w_e = max_cap / c_e`, normalised so the largest
/// link gets weight 1 (any positive scale yields identical routing).
pub fn invcap_weights(network: &Network) -> Vec<f64> {
    let max_cap = network
        .capacities()
        .iter()
        .cloned()
        .fold(f64::MIN_POSITIVE, f64::max);
    network.capacities().iter().map(|c| max_cap / c).collect()
}

/// An OSPF (InvCap + even ECMP) routing of a traffic matrix.
#[derive(Debug, Clone)]
pub struct OspfRouting {
    weights: Vec<f64>,
    flows: Flows,
    fib: ForwardingTable,
}

impl OspfRouting {
    /// Routes `traffic` over `network` with InvCap weights and even ECMP.
    ///
    /// # Errors
    ///
    /// * [`SpefError::UnroutableDemand`] for disconnected demand pairs,
    /// * [`SpefError::InvalidInput`] on size mismatches.
    pub fn route(network: &Network, traffic: &TrafficMatrix) -> Result<OspfRouting, SpefError> {
        Self::route_with_weights(network, traffic, &invcap_weights(network))
    }

    /// Routes with explicit OSPF weights (used by the Fortz–Thorup local
    /// search to evaluate candidate weight settings).
    ///
    /// # Errors
    ///
    /// Same conditions as [`route`](Self::route), plus weight-vector
    /// validation errors.
    pub fn route_with_weights(
        network: &Network,
        traffic: &TrafficMatrix,
        weights: &[f64],
    ) -> Result<OspfRouting, SpefError> {
        let g = network.graph();
        let mut engine = RoutingEngine::new(g);
        let dests = validate_ospf_inputs(network, traffic)?;
        let flows = route_flows(&mut engine, traffic, &dests, weights)?;
        // Flatten the engine's split-table arenas straight into the CSR
        // FIB — no owned per-row vectors are materialised.
        let fib =
            ForwardingTable::from_split_table_set(g.node_count(), &dests, engine.split_tables());
        Ok(OspfRouting {
            weights: weights.to_vec(),
            flows,
            fib,
        })
    }

    /// The link weights in force.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The resulting flows.
    pub fn flows(&self) -> &Flows {
        &self.flows
    }

    /// The even-split forwarding table.
    pub fn forwarding_table(&self) -> &ForwardingTable {
        &self.fib
    }

    /// Maximum link utilization (may exceed 1 — OSPF ignores capacity).
    pub fn max_link_utilization(&self, network: &Network) -> f64 {
        metrics::max_link_utilization(network, self.flows.aggregate())
    }

    /// Normalized utility `Σ log(1 − u)`; `−∞` once any link saturates.
    pub fn normalized_utility(&self, network: &Network) -> f64 {
        metrics::normalized_utility(network, self.flows.aggregate())
    }
}

/// Shared input validation for OSPF routing; returns the destination set.
pub(crate) fn validate_ospf_inputs(
    network: &Network,
    traffic: &TrafficMatrix,
) -> Result<Vec<spef_graph::NodeId>, SpefError> {
    if traffic.node_count() != network.node_count() {
        return Err(SpefError::InvalidInput(format!(
            "traffic matrix covers {} nodes, network has {}",
            traffic.node_count(),
            network.node_count()
        )));
    }
    let dests = traffic.destinations();
    if dests.is_empty() {
        return Err(SpefError::InvalidInput(
            "traffic matrix is empty".to_string(),
        ));
    }
    Ok(dests)
}

/// One even-ECMP routing pass on a reusable engine, returning fresh flows.
/// The Fortz–Thorup local search drives this thousands of times per run;
/// the engine's arenas make each pass allocation-free apart from the
/// returned flows.
pub(crate) fn route_flows(
    engine: &mut RoutingEngine<'_>,
    traffic: &TrafficMatrix,
    dests: &[spef_graph::NodeId],
    weights: &[f64],
) -> Result<Flows, SpefError> {
    engine.build_dags(weights, dests, 0.0)?;
    engine.distribute(traffic, SplitRule::EvenEcmp)
}

/// The allocation-free variant: routes into a caller-held buffer.
pub(crate) fn route_flows_into(
    engine: &mut RoutingEngine<'_>,
    traffic: &TrafficMatrix,
    dests: &[spef_graph::NodeId],
    weights: &[f64],
    out: &mut Flows,
) -> Result<(), SpefError> {
    engine.build_dags(weights, dests, 0.0)?;
    engine.distribute_into(traffic, SplitRule::EvenEcmp, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_graph::EdgeId;
    use spef_topology::standard;

    #[test]
    fn invcap_is_inversely_proportional() {
        let net = standard::cernet2();
        let w = invcap_weights(&net);
        for (e, (&weight, &cap)) in w.iter().zip(net.capacities()).enumerate() {
            assert!(
                (weight - 10.0 / cap).abs() < 1e-12,
                "edge {e}: {weight} vs {}",
                10.0 / cap
            );
        }
        // 10G links get weight 1, 2.5G links weight 4.
        assert!(w.contains(&1.0));
        assert!(w.contains(&4.0));
    }

    #[test]
    fn equal_capacities_reduce_to_hop_count() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let ospf = OspfRouting::route(&net, &tm).unwrap();
        // The Fig. 6 OSPF profile: bottleneck link 1 at utilization 1.6.
        let u = net.utilizations(ospf.flows().aggregate());
        assert!((u[0] - 1.6).abs() < 1e-12, "link 1: {}", u[0]);
        assert!((ospf.max_link_utilization(&net) - 1.6).abs() < 1e-12);
        assert_eq!(ospf.normalized_utility(&net), f64::NEG_INFINITY);
    }

    #[test]
    fn ecmp_splits_parity_paths() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let ospf = OspfRouting::route(&net, &tm).unwrap();
        let f = ospf.flows().aggregate();
        // 1→7 demand (4 units) splits 2/2 across via-5 and via-6 paths.
        assert!((f[3] - 2.0).abs() < 1e-12);
        assert!((f[5] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fib_rows_are_even() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let ospf = OspfRouting::route(&net, &tm).unwrap();
        let fib = ospf.forwarding_table();
        // Node 1 toward destination 7 (ids 0 → 6): two next hops at 1/2.
        let hops = fib.next_hops(0.into(), 6.into()).unwrap();
        assert_eq!(hops.len(), 2);
        for &(_, r) in hops {
            assert!((r - 0.5).abs() < 1e-12);
        }
        let _ = EdgeId::new(0);
    }

    #[test]
    fn custom_weights_change_routing() {
        let net = standard::fig1();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 2.into(), 1.0);
        // Unit weights: direct (1,3) wins.
        let w1 = vec![1.0; net.link_count()];
        let r1 = OspfRouting::route_with_weights(&net, &tm, &w1).unwrap();
        assert!((r1.flows().aggregate()[0] - 1.0).abs() < 1e-12);
        // Penalise the direct link: the 2-hop detour wins.
        let mut w2 = w1.clone();
        w2[0] = 5.0;
        let r2 = OspfRouting::route_with_weights(&net, &tm, &w2).unwrap();
        assert_eq!(r2.flows().aggregate()[0], 0.0);
        assert!((r2.flows().aggregate()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_or_mismatched_traffic() {
        let net = standard::fig1();
        assert!(OspfRouting::route(&net, &TrafficMatrix::new(4)).is_err());
        assert!(OspfRouting::route(&net, &TrafficMatrix::new(9)).is_err());
    }
}
