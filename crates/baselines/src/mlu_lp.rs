//! Exact minimisation of the maximum link utilization (the "MLU [19]"
//! column of TABLE I), as a linear program.
//!
//! ```text
//! minimise  θ
//! s.t.      Σ_t f^t_e ≤ θ · c_e          ∀ links e
//!           B f^t = d^t,  f^t ≥ 0        ∀ destinations t
//! ```
//!
//! The paper's Fig. 1 discussion uses this LP to illustrate why MLU alone
//! is "not a well-defined objective function": its optimum is massively
//! non-unique (any `a ∈ [0.1, 0.9]` split of the 1→3 demand attains
//! MLU 0.9), which min-max / (q, β → ∞) load balance then refines.

use spef_core::{Flows, SpefError};
use spef_lp::simplex::{LinearProgram, Relation, SimplexError, SimplexWorkspace};
use spef_topology::{Network, TrafficMatrix};

/// An optimal solution of the min-MLU LP.
#[derive(Debug, Clone)]
pub struct MluSolution {
    /// The minimum achievable maximum link utilization.
    pub mlu: f64,
    /// One optimal flow (a vertex of the non-unique optimal face).
    pub flows: Flows,
    /// Capacity-constraint duals: `price[e] ≥ 0` is the marginal MLU
    /// reduction per unit capacity added to link `e` (nonzero only on
    /// bottlenecks).
    pub link_prices: Vec<f64>,
}

impl MluSolution {
    /// Solves the min-MLU LP exactly.
    ///
    /// The LP has `|D|·|J| + 1` variables; intended for the paper's small
    /// and mid-size networks (Fig. 1, Fig. 4, Abilene, CERNET2). For the
    /// 50–100-node sweeps the paper itself does not report MLU-LP numbers.
    ///
    /// # Errors
    ///
    /// * [`SpefError::UnroutableDemand`]-class infeasibility surfaces as
    ///   [`SpefError::Infeasible`] (an LP has no notion of which pair
    ///   failed),
    /// * [`SpefError::InvalidInput`] on size mismatches or an empty
    ///   traffic matrix.
    pub fn solve(network: &Network, traffic: &TrafficMatrix) -> Result<MluSolution, SpefError> {
        MluSolution::solve_in(network, traffic, &mut SimplexWorkspace::new())
    }

    /// Like [`solve`](MluSolution::solve), but reuses `workspace` across
    /// calls: the simplex tableau arena and basis bookkeeping are recycled,
    /// and structurally identical re-solves (same topology and destination
    /// set, different demands/capacities — the per-scenario MLU LPs of a
    /// sweep) warm-start from the previous optimal basis.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](MluSolution::solve).
    pub fn solve_in(
        network: &Network,
        traffic: &TrafficMatrix,
        workspace: &mut SimplexWorkspace,
    ) -> Result<MluSolution, SpefError> {
        if traffic.node_count() != network.node_count() {
            return Err(SpefError::InvalidInput(format!(
                "traffic matrix covers {} nodes, network has {}",
                traffic.node_count(),
                network.node_count()
            )));
        }
        let dests = traffic.destinations();
        if dests.is_empty() {
            return Err(SpefError::InvalidInput(
                "traffic matrix is empty".to_string(),
            ));
        }
        let g = network.graph();
        let m = g.edge_count();
        // Variables: f^t_e blocks, then θ last.
        let theta = dests.len() * m;
        let var = |ti: usize, e: usize| ti * m + e;
        let mut lp = LinearProgram::minimize(theta + 1);
        lp.set_objective(theta, 1.0);

        let mut cap_rows = Vec::with_capacity(m);
        for e in 0..m {
            let mut row: Vec<(usize, f64)> = (0..dests.len()).map(|ti| (var(ti, e), 1.0)).collect();
            row.push((theta, -network.capacity(e.into())));
            cap_rows.push(lp.add_constraint(&row, Relation::Le, 0.0));
        }
        for (ti, &t) in dests.iter().enumerate() {
            let demands = traffic.demands_to(t);
            for node in g.nodes() {
                if node == t {
                    continue;
                }
                let mut row: Vec<(usize, f64)> = Vec::new();
                for &e in g.out_edges(node) {
                    row.push((var(ti, e.index()), 1.0));
                }
                for &e in g.in_edges(node) {
                    row.push((var(ti, e.index()), -1.0));
                }
                lp.add_constraint(&row, Relation::Eq, demands[node.index()]);
            }
        }

        let sol = match lp.resolve(workspace) {
            Ok(sol) => sol,
            Err(SimplexError::Infeasible) => return Err(SpefError::Infeasible),
            Err(e) => return Err(SpefError::InvalidInput(format!("min-MLU LP failed: {e}"))),
        };

        let mut per_dest = Vec::with_capacity(dests.len());
        let mut aggregate = vec![0.0; m];
        for ti in 0..dests.len() {
            let f: Vec<f64> = (0..m).map(|e| sol.value(var(ti, e))).collect();
            for (agg, fe) in aggregate.iter_mut().zip(&f) {
                *agg += fe;
            }
            per_dest.push(f);
        }
        // Min-problem Le duals are ≤ 0; report positive prices.
        let link_prices: Vec<f64> = cap_rows.iter().map(|&r| -sol.dual(r)).collect();
        Ok(MluSolution {
            mlu: sol.value(theta),
            flows: Flows::assemble(dests, per_dest, aggregate),
            link_prices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_core::metrics;
    use spef_topology::standard;

    #[test]
    fn fig1_min_mlu_is_090() {
        // TABLE I / Fig. 1 discussion: the (3,4) link pins MLU at 0.9; the
        // 1→3 split is free in [0.1, 0.9].
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let sol = MluSolution::solve(&net, &tm).unwrap();
        assert!((sol.mlu - 0.9).abs() < 1e-9, "mlu = {}", sol.mlu);
        let u = net.utilizations(sol.flows.aggregate());
        assert!((u[1] - 0.9).abs() < 1e-9, "(3,4) is the bottleneck");
        // The direct-link utilization is the paper's free constant a.
        assert!(u[0] >= 0.1 - 1e-9 && u[0] <= 0.9 + 1e-9, "a = {}", u[0]);
        // Achieved MLU equals the LP objective.
        assert!(
            (metrics::max_link_utilization(&net, sol.flows.aggregate()) - sol.mlu).abs() < 1e-9
        );
        // Only the bottleneck carries a positive price.
        assert!(sol.link_prices[1] > 0.0);
    }

    #[test]
    fn fig4_min_mlu_beats_ospf() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let sol = MluSolution::solve(&net, &tm).unwrap();
        // OSPF gets 1.6 (Fig. 6); the optimum must be < 1 and at least the
        // 0.8 bound forced by node 1's 12 units over 3×5 capacity... and by
        // the single-path 3→2 demand (4/5).
        assert!(sol.mlu < 1.0);
        assert!(sol.mlu >= 0.8 - 1e-9, "mlu = {}", sol.mlu);
    }

    #[test]
    fn conservation_holds() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let sol = MluSolution::solve(&net, &tm).unwrap();
        for &t in sol.flows.destinations() {
            let f = sol.flows.for_destination(t).unwrap();
            let div = net.graph().divergence(f);
            let demands = tm.demands_to(t);
            for node in net.graph().nodes() {
                if node != t {
                    assert!((div[node.index()] - demands[node.index()]).abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        let net = standard::fig1();
        assert!(MluSolution::solve(&net, &TrafficMatrix::new(4)).is_err());
    }

    #[test]
    fn workspace_reuse_warm_starts_across_demand_scales() {
        // The per-scenario pattern: same topology, demands move. A shared
        // workspace must reproduce the cold MLU at every scale.
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let mut ws = spef_lp::SimplexWorkspace::new();
        for scale in [1.0, 0.5, 0.25, 0.75, 1.0] {
            let scaled = tm.scaled(scale);
            let warm = MluSolution::solve_in(&net, &scaled, &mut ws).unwrap();
            let cold = MluSolution::solve(&net, &scaled).unwrap();
            assert!(
                (warm.mlu - cold.mlu).abs() < 1e-9,
                "scale {scale}: warm {} vs cold {}",
                warm.mlu,
                cold.mlu
            );
            // The warm vertex may differ on the degenerate optimal face,
            // but it must still be a feasible flow achieving the same MLU.
            assert!(
                (metrics::max_link_utilization(&net, warm.flows.aggregate()) - warm.mlu).abs()
                    < 1e-7
            );
        }
    }

    #[test]
    fn scaling_demands_scales_mlu() {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let half = tm.scaled(0.5);
        let sol = MluSolution::solve(&net, &half).unwrap();
        assert!((sol.mlu - 0.45).abs() < 1e-9);
    }
}
