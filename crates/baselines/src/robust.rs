//! Robust OSPF weight search: optimise the worst-case MLU across a
//! single-circuit failure set.
//!
//! The robust-OSPF line the paper's §VI cites (and "OSPF Weight Setting
//! Optimization for Single Link Failures") observes that weights optimised
//! for the intact topology go stale the moment a link fails: OSPF
//! reconverges on the survivors with the *old* weights, and the resulting
//! even-ECMP routing can be far from any optimum. The robust answer is to
//! pick one weight vector whose worst case over the failure set is as good
//! as possible — trading intact-topology optimality for failure insurance.
//!
//! This module reuses the Fortz–Thorup local-search scaffolding
//! ([`crate::FtOutcome`]): the same first-improvement shuffled
//! single-weight scans over integer weights `1..=max_weight`, but with the
//! scalar objective
//!
//! ```text
//! cost(w) = max over scenarios s of MLU(even-ECMP routing of w on s)
//! ```
//!
//! where the scenarios are the intact topology plus every single duplex
//! *circuit* failure that leaves the network connected (bridge circuits
//! are skipped and counted — see [`RobustOutcome::skipped_circuits`]).
//! Every degraded topology is pre-built once; candidate evaluations route
//! into per-scenario engines whose arenas are reused across the thousands
//! of probes, mirroring the FT search's engine-probed `cost_of`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spef_core::{metrics, RoutingEngine, SpefError, SpfStats};
use spef_topology::{Network, TrafficMatrix};

use crate::ospf;
use crate::util::shuffle;

/// Configuration of the robust weight search.
///
/// Deliberately smaller than [`crate::FtConfig`]: each evaluation routes
/// the candidate on *every* failure scenario, so budgets are counted in
/// candidate vectors, and the default budget is modest. No random
/// restarts — the search starts from rounded InvCap weights so a given
/// `(instance, config)` pair explores one deterministic trajectory.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Largest weight value the search may assign (default 20, matching
    /// [`crate::FtConfig`]).
    pub max_weight: u32,
    /// Candidate weight-vector budget (default 150); each candidate costs
    /// one even-ECMP routing per scenario.
    pub max_evaluations: usize,
    /// RNG seed for the scan order.
    pub seed: u64,
    /// Force dense SPF rebuilds for every probe on every scenario
    /// (default `false`: each scenario engine's delta-aware incremental
    /// path rebuilds only destinations the probed weight can affect —
    /// bit-identical results, unchanged search trajectory).
    pub full_rebuild: bool,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            max_weight: 20,
            max_evaluations: 150,
            seed: 0x0b57,
            full_rebuild: false,
        }
    }
}

/// Result of a robust weight search.
#[derive(Debug, Clone)]
pub struct RobustOutcome {
    /// Best integer weight setting found.
    pub weights: Vec<f64>,
    /// Its worst-case MLU over the scenario set (intact + every
    /// connected single-circuit failure).
    pub worst_mlu: f64,
    /// Its MLU on the intact topology — the price paid for robustness,
    /// to compare against weights optimised for the intact case alone.
    pub intact_mlu: f64,
    /// Candidate weight vectors evaluated.
    pub evaluations: usize,
    /// Duplex circuits whose failure would disconnect the network,
    /// excluded from the scenario set (reported, never silent).
    pub skipped_circuits: usize,
    /// SPF build counters summed over the intact and scenario engines —
    /// how many probe routings took the incremental path and how many
    /// destination slots they rebuilt.
    pub spf_stats: SpfStats,
}

impl RobustOutcome {
    /// Runs the local search: starting from rounded-InvCap weights,
    /// repeatedly rescans links in seeded-random order trying every
    /// candidate weight `1..=max_weight`, keeping first improvements of
    /// the worst-case MLU.
    ///
    /// # Errors
    ///
    /// Propagates routing errors ([`SpefError::UnroutableDemand`] etc.)
    /// from candidate evaluations on any scenario.
    pub fn local_search(
        network: &Network,
        traffic: &TrafficMatrix,
        config: &RobustConfig,
    ) -> Result<RobustOutcome, SpefError> {
        let m = network.link_count();
        let dests = ospf::validate_ospf_inputs(network, traffic)?;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Pre-build the scenario set once: every connected single-circuit
        // failure, with the kept-edge map for weight remapping.
        let mut scenarios = Vec::new();
        let mut skipped_circuits = 0usize;
        for circuit in network.duplex_circuits() {
            match network.without_links(&circuit) {
                Ok((degraded, kept)) => scenarios.push((degraded, kept)),
                Err(_) => skipped_circuits += 1,
            }
        }
        // One engine + one weight buffer + one flows buffer per scenario
        // (engines borrow their network). Per-scenario flow buffers —
        // rather than one shared reshaping buffer — let each engine's
        // incremental redistribution path recognise its own previous
        // output and refresh only the columns a probe actually touched.
        let mut intact_engine = RoutingEngine::new(network.graph());
        intact_engine.set_incremental(!config.full_rebuild);
        let mut engines: Vec<RoutingEngine<'_>> = scenarios
            .iter()
            .map(|(degraded, _)| {
                let mut e = RoutingEngine::new(degraded.graph());
                e.set_incremental(!config.full_rebuild);
                e
            })
            .collect();
        let mut degraded_weights: Vec<Vec<f64>> = scenarios
            .iter()
            .map(|(_, kept)| vec![0.0; kept.len()])
            .collect();
        let mut flows = intact_engine.distribute_fresh();
        let mut scenario_flows: Vec<spef_core::Flows> = scenarios
            .iter()
            .map(|_| intact_engine.distribute_fresh())
            .collect();

        // Worst-case MLU of one candidate across all scenarios. The
        // intact MLU is returned alongside so the final report does not
        // need an extra pass.
        let mut cost_of = |weights: &[f64],
                           intact_engine: &mut RoutingEngine<'_>,
                           engines: &mut [RoutingEngine<'_>]|
         -> Result<(f64, f64), SpefError> {
            ospf::route_flows_into(intact_engine, traffic, &dests, weights, &mut flows)?;
            let intact = metrics::max_link_utilization(network, flows.aggregate());
            let mut worst = intact;
            for (i, (degraded, kept)) in scenarios.iter().enumerate() {
                let dw = &mut degraded_weights[i];
                for (slot, &old) in dw.iter_mut().zip(kept) {
                    *slot = weights[old.index()];
                }
                let sf = &mut scenario_flows[i];
                ospf::route_flows_into(&mut engines[i], traffic, &dests, dw, sf)?;
                worst = worst.max(metrics::max_link_utilization(degraded, sf.aggregate()));
            }
            Ok((worst, intact))
        };

        // Start point: rounded InvCap (the FT convention).
        let max_cap = network
            .capacities()
            .iter()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        let mut weights: Vec<f64> = network
            .capacities()
            .iter()
            .map(|c| (max_cap / c).round().clamp(1.0, config.max_weight as f64))
            .collect();

        let (mut cost, mut intact_mlu) = cost_of(&weights, &mut intact_engine, &mut engines)?;
        let mut evaluations = 1usize;
        let mut improved = true;
        while improved && evaluations < config.max_evaluations {
            improved = false;
            let mut order: Vec<usize> = (0..m).collect();
            shuffle(&mut order, &mut rng);
            'links: for e in order {
                let original = weights[e];
                for cand in 1..=config.max_weight {
                    let cand = cand as f64;
                    if cand == original {
                        continue;
                    }
                    weights[e] = cand;
                    let (c_new, i_new) = cost_of(&weights, &mut intact_engine, &mut engines)?;
                    evaluations += 1;
                    if c_new < cost - 1e-9 {
                        cost = c_new;
                        intact_mlu = i_new;
                        improved = true;
                        continue 'links; // keep the improvement, next link
                    }
                    weights[e] = original;
                    if evaluations >= config.max_evaluations {
                        break 'links;
                    }
                }
            }
        }

        let mut spf_stats = intact_engine.spf_stats();
        for e in &engines {
            let s = e.spf_stats();
            spf_stats.builds += s.builds;
            spf_stats.incremental_builds += s.incremental_builds;
            spf_stats.slots_rebuilt += s.slots_rebuilt;
            spf_stats.last_dirty = spf_stats.last_dirty.max(s.last_dirty);
        }
        Ok(RobustOutcome {
            weights,
            worst_mlu: cost,
            intact_mlu,
            evaluations,
            skipped_circuits,
            spf_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ospf::OspfRouting;
    use spef_graph::EdgeId;
    use spef_topology::standard;

    fn abilene_instance(load: f64) -> (Network, TrafficMatrix) {
        let net = standard::abilene();
        let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, load);
        (net, tm)
    }

    #[test]
    fn worst_case_dominates_intact_case() {
        let (net, tm) = abilene_instance(0.05);
        let out = RobustOutcome::local_search(&net, &tm, &RobustConfig::default()).unwrap();
        assert!(out.worst_mlu >= out.intact_mlu - 1e-12);
        assert!(out.intact_mlu > 0.0);
        assert!(out.evaluations >= 1);
    }

    #[test]
    fn robust_search_improves_worst_case_over_invcap() {
        let (net, tm) = abilene_instance(0.08);
        // Worst-case MLU of plain InvCap weights across the same set.
        let invcap = ospf::invcap_weights(&net);
        let mut worst_invcap = OspfRouting::route_with_weights(&net, &tm, &invcap)
            .unwrap()
            .max_link_utilization(&net);
        for circuit in net.duplex_circuits() {
            let Ok((degraded, kept)) = net.without_links(&circuit) else {
                continue;
            };
            let dw: Vec<f64> = kept.iter().map(|&old| invcap[old.index()]).collect();
            let r = OspfRouting::route_with_weights(&degraded, &tm, &dw).unwrap();
            worst_invcap = worst_invcap.max(r.max_link_utilization(&degraded));
        }
        let cfg = RobustConfig {
            max_evaluations: 400,
            ..RobustConfig::default()
        };
        let out = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert!(
            out.worst_mlu <= worst_invcap + 1e-12,
            "robust {} vs invcap worst-case {worst_invcap}",
            out.worst_mlu
        );
    }

    #[test]
    fn deterministic_in_seed_and_budget() {
        let (net, tm) = abilene_instance(0.05);
        let cfg = RobustConfig {
            max_evaluations: 60,
            ..RobustConfig::default()
        };
        let a = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        let b = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.worst_mlu.to_bits(), b.worst_mlu.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn incremental_probes_match_full_rebuild_search() {
        let (net, tm) = abilene_instance(0.05);
        let cfg = RobustConfig {
            max_evaluations: 60,
            ..RobustConfig::default()
        };
        let full = RobustConfig {
            full_rebuild: true,
            ..cfg.clone()
        };
        let a = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        let b = RobustOutcome::local_search(&net, &tm, &full).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.worst_mlu.to_bits(), b.worst_mlu.to_bits());
        assert_eq!(a.intact_mlu.to_bits(), b.intact_mlu.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert!(a.spf_stats.incremental_builds > 0, "{:?}", a.spf_stats);
        assert_eq!(b.spf_stats.incremental_builds, 0);
    }

    #[test]
    fn bridge_circuits_are_counted_not_silent() {
        // A path network: every circuit is a bridge except none — failing
        // any circuit disconnects it, so all circuits are skipped and the
        // scenario set degenerates to the intact topology alone.
        let mut b = Network::builder("path3");
        let n0 = b.add_node("a", (0.0, 0.0));
        let n1 = b.add_node("b", (1.0, 0.0));
        let n2 = b.add_node("c", (2.0, 0.0));
        b.add_duplex_link(n0, n1, 1.0);
        b.add_duplex_link(n1, n2, 1.0);
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(3);
        tm.set(n0, n2, 0.5);
        let cfg = RobustConfig {
            max_evaluations: 30,
            ..RobustConfig::default()
        };
        let out = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert_eq!(out.skipped_circuits, 2);
        // Only the intact scenario remains, so worst == intact.
        assert_eq!(out.worst_mlu.to_bits(), out.intact_mlu.to_bits());
        let _ = EdgeId::new(0);
    }
}
