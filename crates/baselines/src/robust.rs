//! Robust OSPF weight search: optimise the worst-case MLU across a
//! single-circuit failure set.
//!
//! The robust-OSPF line the paper's §VI cites (and "OSPF Weight Setting
//! Optimization for Single Link Failures") observes that weights optimised
//! for the intact topology go stale the moment a link fails: OSPF
//! reconverges on the survivors with the *old* weights, and the resulting
//! even-ECMP routing can be far from any optimum. The robust answer is to
//! pick one weight vector whose worst case over the failure set is as good
//! as possible — trading intact-topology optimality for failure insurance.
//!
//! This module reuses the Fortz–Thorup local-search scaffolding
//! ([`crate::FtOutcome`]): the same first-improvement shuffled
//! single-weight scans over integer weights `1..=max_weight`, but with the
//! scalar objective
//!
//! ```text
//! cost(w) = max over scenarios s of MLU(even-ECMP routing of w on s)
//! ```
//!
//! where the scenarios are the intact topology plus every single duplex
//! *circuit* failure that leaves the network connected (bridge circuits
//! are skipped and counted — see [`RobustOutcome::skipped_circuits`]).
//!
//! Candidate evaluations probe the failure scenarios on **one** shared
//! engine: each circuit is masked out with
//! [`RoutingEngine::fail_links`], routed (an incremental refresh of the
//! destinations the circuit dirtied — the weights are unchanged, so the
//! SPF fingerprint holds), and restored — no per-scenario engines, no
//! per-scenario DAG arenas, O(dests·edges) peak memory instead of
//! O(circuits·dests·edges). `full_rebuild` keeps the legacy path —
//! degraded topologies pre-built once, one engine per scenario — as the
//! regression baseline; both paths produce bit-identical costs, so the
//! search trajectory is the same.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spef_core::{metrics, RoutingEngine, SpefError, SpfStats};
use spef_topology::{Network, TrafficMatrix};

use crate::ospf;
use crate::util::shuffle;

/// Configuration of the robust weight search.
///
/// Deliberately smaller than [`crate::FtConfig`]: each evaluation routes
/// the candidate on *every* failure scenario, so budgets are counted in
/// candidate vectors, and the default budget is modest. No random
/// restarts — the search starts from rounded InvCap weights so a given
/// `(instance, config)` pair explores one deterministic trajectory.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Largest weight value the search may assign (default 20, matching
    /// [`crate::FtConfig`]).
    pub max_weight: u32,
    /// Candidate weight-vector budget (default 150); each candidate costs
    /// one even-ECMP routing per scenario.
    pub max_evaluations: usize,
    /// RNG seed for the scan order.
    pub seed: u64,
    /// Force dense SPF rebuilds for every probe on every scenario
    /// (default `false`: each scenario engine's delta-aware incremental
    /// path rebuilds only destinations the probed weight can affect —
    /// bit-identical results, unchanged search trajectory).
    pub full_rebuild: bool,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            max_weight: 20,
            max_evaluations: 150,
            seed: 0x0b57,
            full_rebuild: false,
        }
    }
}

/// Result of a robust weight search.
#[derive(Debug, Clone)]
pub struct RobustOutcome {
    /// Best integer weight setting found.
    pub weights: Vec<f64>,
    /// Its worst-case MLU over the scenario set (intact + every
    /// connected single-circuit failure).
    pub worst_mlu: f64,
    /// Its MLU on the intact topology — the price paid for robustness,
    /// to compare against weights optimised for the intact case alone.
    pub intact_mlu: f64,
    /// Candidate weight vectors evaluated.
    pub evaluations: usize,
    /// Duplex circuits whose failure would disconnect the network,
    /// excluded from the scenario set (reported, never silent).
    pub skipped_circuits: usize,
    /// SPF build counters summed over every engine the search used — how
    /// many probe routings took the incremental/topology-delta paths and
    /// how many destination slots they rebuilt.
    pub spf_stats: SpfStats,
    /// Peak bytes reserved by the search's routing arenas: one engine's
    /// worth on the masked path, the sum over the intact and per-scenario
    /// engines on the `full_rebuild` path.
    pub arena_bytes: usize,
}

impl RobustOutcome {
    /// Runs the local search: starting from rounded-InvCap weights,
    /// repeatedly rescans links in seeded-random order trying every
    /// candidate weight `1..=max_weight`, keeping first improvements of
    /// the worst-case MLU.
    ///
    /// # Errors
    ///
    /// Propagates routing errors ([`SpefError::UnroutableDemand`] etc.)
    /// from candidate evaluations on any scenario.
    pub fn local_search(
        network: &Network,
        traffic: &TrafficMatrix,
        config: &RobustConfig,
    ) -> Result<RobustOutcome, SpefError> {
        let m = network.link_count();
        let dests = ospf::validate_ospf_inputs(network, traffic)?;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Start point: rounded InvCap (the FT convention).
        let max_cap = network
            .capacities()
            .iter()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        let start: Vec<f64> = network
            .capacities()
            .iter()
            .map(|c| (max_cap / c).round().clamp(1.0, config.max_weight as f64))
            .collect();

        if config.full_rebuild {
            // Legacy path: every degraded topology pre-built once, one
            // engine + weight buffer + flow buffer per scenario. Kept as
            // the regression baseline the masked path is diffed against.
            let mut scenarios = Vec::new();
            let mut skipped_circuits = 0usize;
            for circuit in network.duplex_circuits() {
                match network.without_links(&circuit) {
                    Ok((degraded, kept)) => scenarios.push((degraded, kept)),
                    Err(_) => skipped_circuits += 1,
                }
            }
            let mut intact_engine = RoutingEngine::new(network.graph());
            intact_engine.set_incremental(false);
            let mut engines: Vec<RoutingEngine<'_>> = scenarios
                .iter()
                .map(|(degraded, _)| {
                    let mut e = RoutingEngine::new(degraded.graph());
                    e.set_incremental(false);
                    e
                })
                .collect();
            let mut degraded_weights: Vec<Vec<f64>> = scenarios
                .iter()
                .map(|(_, kept)| vec![0.0; kept.len()])
                .collect();
            let mut flows = intact_engine.distribute_fresh();
            let mut scenario_flows: Vec<spef_core::Flows> = scenarios
                .iter()
                .map(|_| intact_engine.distribute_fresh())
                .collect();

            // Worst-case MLU of one candidate across all scenarios. The
            // intact MLU is returned alongside so the final report does
            // not need an extra pass.
            let mut cost_of = |weights: &[f64]| -> Result<(f64, f64), SpefError> {
                ospf::route_flows_into(&mut intact_engine, traffic, &dests, weights, &mut flows)?;
                let intact = metrics::max_link_utilization(network, flows.aggregate());
                let mut worst = intact;
                for (i, (degraded, kept)) in scenarios.iter().enumerate() {
                    let dw = &mut degraded_weights[i];
                    for (slot, &old) in dw.iter_mut().zip(kept) {
                        *slot = weights[old.index()];
                    }
                    let sf = &mut scenario_flows[i];
                    ospf::route_flows_into(&mut engines[i], traffic, &dests, dw, sf)?;
                    worst = worst.max(metrics::max_link_utilization(degraded, sf.aggregate()));
                }
                Ok((worst, intact))
            };
            let (weights, cost, intact_mlu, evaluations) =
                first_improvement_search(m, config, &mut rng, start, &mut cost_of)?;

            let mut spf_stats = intact_engine.spf_stats();
            let mut arena_bytes = intact_engine.arena_bytes();
            for e in &engines {
                let s = e.spf_stats();
                spf_stats.builds += s.builds;
                spf_stats.incremental_builds += s.incremental_builds;
                spf_stats.slots_rebuilt += s.slots_rebuilt;
                spf_stats.last_dirty = spf_stats.last_dirty.max(s.last_dirty);
                spf_stats.topology_builds += s.topology_builds;
                spf_stats.masked_links += s.masked_links;
                arena_bytes += e.arena_bytes();
            }
            return Ok(RobustOutcome {
                weights,
                worst_mlu: cost,
                intact_mlu,
                evaluations,
                skipped_circuits,
                spf_stats,
                arena_bytes,
            });
        }

        // Masked path: circuits are classified once (test-and-drop — no
        // degraded Network is retained) and every candidate probes them
        // on the one shared engine via fail/restore round-trips. The
        // weights are identical across the intact and failed routings of
        // a candidate, so the SPF fingerprint holds through every mask
        // toggle and each probe costs one dirty-destination refresh. The
        // MLU is folded over the intact link set — masked links carry
        // zero flow, and utilisations are non-negative, so the maximum is
        // bit-identical to folding over the degraded link set.
        let mut circuits = Vec::new();
        let mut skipped_circuits = 0usize;
        for circuit in network.duplex_circuits() {
            match network.without_links(&circuit) {
                Ok(_) => circuits.push(circuit),
                Err(_) => skipped_circuits += 1,
            }
        }
        let mut engine = RoutingEngine::new(network.graph());
        let mut flows = engine.distribute_fresh();
        let mut cost_of = |weights: &[f64]| -> Result<(f64, f64), SpefError> {
            ospf::route_flows_into(&mut engine, traffic, &dests, weights, &mut flows)?;
            let intact = metrics::max_link_utilization(network, flows.aggregate());
            let mut worst = intact;
            for circuit in &circuits {
                engine.fail_links(circuit)?;
                ospf::route_flows_into(&mut engine, traffic, &dests, weights, &mut flows)?;
                worst = worst.max(metrics::max_link_utilization(network, flows.aggregate()));
                engine.restore_links(circuit)?;
            }
            Ok((worst, intact))
        };
        let (weights, cost, intact_mlu, evaluations) =
            first_improvement_search(m, config, &mut rng, start, &mut cost_of)?;
        Ok(RobustOutcome {
            weights,
            worst_mlu: cost,
            intact_mlu,
            evaluations,
            skipped_circuits,
            spf_stats: engine.spf_stats(),
            arena_bytes: engine.arena_bytes(),
        })
    }
}

/// The shared first-improvement scan over integer weights: seeded-random
/// link order, candidates `1..=max_weight` per link, keep the first
/// candidate improving the cost, stop when a full rescan improves nothing
/// or the evaluation budget runs out. The trajectory is a pure function
/// of `(start, config, cost values)` — two cost functions that agree bit
/// for bit walk the same path.
///
/// `(worst-case MLU, intact MLU)` of one candidate weight vector.
type CandidateCost = Result<(f64, f64), SpefError>;

/// Returns `(weights, cost, intact_mlu, evaluations)`.
fn first_improvement_search(
    m: usize,
    config: &RobustConfig,
    rng: &mut StdRng,
    mut weights: Vec<f64>,
    cost_of: &mut dyn FnMut(&[f64]) -> CandidateCost,
) -> Result<(Vec<f64>, f64, f64, usize), SpefError> {
    let (mut cost, mut intact_mlu) = cost_of(&weights)?;
    let mut evaluations = 1usize;
    let mut improved = true;
    while improved && evaluations < config.max_evaluations {
        improved = false;
        let mut order: Vec<usize> = (0..m).collect();
        shuffle(&mut order, rng);
        'links: for e in order {
            let original = weights[e];
            for cand in 1..=config.max_weight {
                let cand = cand as f64;
                if cand == original {
                    continue;
                }
                weights[e] = cand;
                let (c_new, i_new) = cost_of(&weights)?;
                evaluations += 1;
                if c_new < cost - 1e-9 {
                    cost = c_new;
                    intact_mlu = i_new;
                    improved = true;
                    continue 'links; // keep the improvement, next link
                }
                weights[e] = original;
                if evaluations >= config.max_evaluations {
                    break 'links;
                }
            }
        }
    }
    Ok((weights, cost, intact_mlu, evaluations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ospf::OspfRouting;
    use spef_graph::EdgeId;
    use spef_topology::standard;

    fn abilene_instance(load: f64) -> (Network, TrafficMatrix) {
        let net = standard::abilene();
        let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, load);
        (net, tm)
    }

    #[test]
    fn worst_case_dominates_intact_case() {
        let (net, tm) = abilene_instance(0.05);
        let out = RobustOutcome::local_search(&net, &tm, &RobustConfig::default()).unwrap();
        assert!(out.worst_mlu >= out.intact_mlu - 1e-12);
        assert!(out.intact_mlu > 0.0);
        assert!(out.evaluations >= 1);
    }

    #[test]
    fn robust_search_improves_worst_case_over_invcap() {
        let (net, tm) = abilene_instance(0.08);
        // Worst-case MLU of plain InvCap weights across the same set.
        let invcap = ospf::invcap_weights(&net);
        let mut worst_invcap = OspfRouting::route_with_weights(&net, &tm, &invcap)
            .unwrap()
            .max_link_utilization(&net);
        for circuit in net.duplex_circuits() {
            let Ok((degraded, kept)) = net.without_links(&circuit) else {
                continue;
            };
            let dw: Vec<f64> = kept.iter().map(|&old| invcap[old.index()]).collect();
            let r = OspfRouting::route_with_weights(&degraded, &tm, &dw).unwrap();
            worst_invcap = worst_invcap.max(r.max_link_utilization(&degraded));
        }
        let cfg = RobustConfig {
            max_evaluations: 400,
            ..RobustConfig::default()
        };
        let out = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert!(
            out.worst_mlu <= worst_invcap + 1e-12,
            "robust {} vs invcap worst-case {worst_invcap}",
            out.worst_mlu
        );
    }

    #[test]
    fn deterministic_in_seed_and_budget() {
        let (net, tm) = abilene_instance(0.05);
        let cfg = RobustConfig {
            max_evaluations: 60,
            ..RobustConfig::default()
        };
        let a = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        let b = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.worst_mlu.to_bits(), b.worst_mlu.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn incremental_probes_match_full_rebuild_search() {
        let (net, tm) = abilene_instance(0.05);
        let cfg = RobustConfig {
            max_evaluations: 60,
            ..RobustConfig::default()
        };
        let full = RobustConfig {
            full_rebuild: true,
            ..cfg.clone()
        };
        let a = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        let b = RobustOutcome::local_search(&net, &tm, &full).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.worst_mlu.to_bits(), b.worst_mlu.to_bits());
        assert_eq!(a.intact_mlu.to_bits(), b.intact_mlu.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert!(a.spf_stats.incremental_builds > 0, "{:?}", a.spf_stats);
        assert_eq!(b.spf_stats.incremental_builds, 0);
        // Every probe toggles the mask in place on the shared engine.
        assert!(a.spf_stats.topology_builds > 0, "{:?}", a.spf_stats);
        assert!(a.spf_stats.masked_links > 0, "{:?}", a.spf_stats);
        assert_eq!(b.spf_stats.topology_builds, 0);
        // The masked path holds one engine's worth of arenas; the rebuild
        // path holds one per scenario on top of the intact engine.
        assert!(
            a.arena_bytes * 2 < b.arena_bytes,
            "masked {} vs rebuild {}",
            a.arena_bytes,
            b.arena_bytes
        );
    }

    #[test]
    fn bridge_circuits_are_counted_not_silent() {
        // A path network: every circuit is a bridge except none — failing
        // any circuit disconnects it, so all circuits are skipped and the
        // scenario set degenerates to the intact topology alone.
        let mut b = Network::builder("path3");
        let n0 = b.add_node("a", (0.0, 0.0));
        let n1 = b.add_node("b", (1.0, 0.0));
        let n2 = b.add_node("c", (2.0, 0.0));
        b.add_duplex_link(n0, n1, 1.0);
        b.add_duplex_link(n1, n2, 1.0);
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(3);
        tm.set(n0, n2, 0.5);
        let cfg = RobustConfig {
            max_evaluations: 30,
            ..RobustConfig::default()
        };
        let out = RobustOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert_eq!(out.skipped_circuits, 2);
        // Only the intact scenario remains, so worst == intact.
        assert_eq!(out.worst_mlu.to_bits(), out.intact_mlu.to_bits());
        let _ = EdgeId::new(0);
    }
}
