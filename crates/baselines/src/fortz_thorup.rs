//! The Fortz–Thorup piecewise-linear link cost and a local-search weight
//! optimiser.
//!
//! Fortz & Thorup ("Internet traffic engineering by optimizing OSPF
//! weights", INFOCOM 2000) approximate M/M/1 delay with a convex
//! piecewise-linear cost whose derivative jumps at utilization
//! 1/3, 2/3, 9/10, 1 and 11/10 — the "FT" curve of the paper's Fig. 2.
//! Optimising even-ECMP OSPF weights against it is NP-hard, so they use a
//! local search; [`FtOutcome::local_search`] implements a faithful
//! single-weight-neighbourhood descent with random restarts, enough to
//! reproduce the FT column of TABLE I and serve as a comparison point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spef_core::{RoutingEngine, SpefError, SpfStats};
use spef_topology::{Network, TrafficMatrix};

use crate::ospf::{self, OspfRouting};
use crate::util::shuffle;

/// The Fortz–Thorup piecewise-linear link cost Φ.
///
/// Derivative (cost per unit flow) as a function of utilization `u = f/c`:
///
/// | segment | Φ′ |
/// |---------|-----|
/// | `u < 1/3` | 1 |
/// | `1/3 ≤ u < 2/3` | 3 |
/// | `2/3 ≤ u < 9/10` | 10 |
/// | `9/10 ≤ u < 1` | 70 |
/// | `1 ≤ u < 11/10` | 500 |
/// | `u ≥ 11/10` | 5000 |
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtCost;

/// The segment breakpoints (in utilization) and slopes of Φ′.
pub const FT_BREAKPOINTS: [f64; 5] = [1.0 / 3.0, 2.0 / 3.0, 9.0 / 10.0, 1.0, 11.0 / 10.0];
/// Slopes of Φ′ per segment (between consecutive breakpoints).
pub const FT_SLOPES: [f64; 6] = [1.0, 3.0, 10.0, 70.0, 500.0, 5000.0];

impl FtCost {
    /// Marginal cost Φ′(f, c) at flow `f` on a link of capacity `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0` or `f < 0`.
    pub fn marginal(self, flow: f64, capacity: f64) -> f64 {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(flow >= 0.0, "flow must be non-negative");
        let u = flow / capacity;
        for (i, &bp) in FT_BREAKPOINTS.iter().enumerate() {
            if u < bp {
                return FT_SLOPES[i];
            }
        }
        FT_SLOPES[5]
    }

    /// Cost Φ(f, c): the integral of the marginal cost from 0 to `f`
    /// (Φ(0) = 0, convex piecewise linear).
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0` or `f < 0`.
    pub fn cost(self, flow: f64, capacity: f64) -> f64 {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(flow >= 0.0, "flow must be non-negative");
        let mut total = 0.0;
        let mut prev_bp_flow = 0.0;
        for (i, &bp) in FT_BREAKPOINTS.iter().enumerate() {
            let bp_flow = bp * capacity;
            if flow <= bp_flow {
                return total + FT_SLOPES[i] * (flow - prev_bp_flow);
            }
            total += FT_SLOPES[i] * (bp_flow - prev_bp_flow);
            prev_bp_flow = bp_flow;
        }
        total + FT_SLOPES[5] * (flow - prev_bp_flow)
    }

    /// Network-wide cost `Σ_e Φ(f_e, c_e)` — the objective the local
    /// search minimises.
    ///
    /// # Panics
    ///
    /// Panics if `flows.len() != network.link_count()`.
    pub fn total_cost(self, network: &Network, flows: &[f64]) -> f64 {
        assert_eq!(flows.len(), network.link_count(), "flow vector length");
        flows
            .iter()
            .zip(network.capacities())
            .map(|(&f, &c)| self.cost(f, c))
            .sum()
    }
}

/// Configuration of the Fortz–Thorup local search.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Largest weight value the search may assign (FT use 2^16−1 in
    /// practice; 20 keeps the neighbourhood tractable and matches their
    /// published small-network experiments).
    pub max_weight: u32,
    /// Total single-weight evaluation budget (default 3000).
    pub max_evaluations: usize,
    /// Random restarts from fresh weight vectors (default 2).
    pub restarts: usize,
    /// RNG seed for restart points and scan order.
    pub seed: u64,
    /// Force dense SPF rebuilds for every probe (default `false`: the
    /// engine's delta-aware incremental path rebuilds only destinations
    /// the probed weight can affect — bit-identical results, so the
    /// search trajectory is unchanged; only wall clock differs).
    pub full_rebuild: bool,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            max_weight: 20,
            max_evaluations: 3000,
            restarts: 2,
            seed: 0x5eed,
            full_rebuild: false,
        }
    }
}

/// Result of a Fortz–Thorup weight optimisation.
#[derive(Debug, Clone)]
pub struct FtOutcome {
    /// Best integer weight setting found.
    pub weights: Vec<f64>,
    /// Its total piecewise-linear cost.
    pub cost: f64,
    /// The routing under the best weights.
    pub routing: OspfRouting,
    /// Best-cost trace, one entry per accepted improvement.
    pub cost_trace: Vec<f64>,
    /// Evaluations spent.
    pub evaluations: usize,
    /// SPF build counters of the probe engine — how many probes took the
    /// incremental path and how many destination slots they rebuilt.
    pub spf_stats: SpfStats,
}

impl FtOutcome {
    /// Runs the local search: starting from rounded-InvCap weights (and
    /// `restarts` random vectors), repeatedly rescans links trying every
    /// candidate weight `1..=max_weight` and keeps the best improvement.
    ///
    /// # Errors
    ///
    /// Propagates routing errors ([`SpefError::UnroutableDemand`] etc.)
    /// from candidate evaluations.
    pub fn local_search(
        network: &Network,
        traffic: &TrafficMatrix,
        config: &FtConfig,
    ) -> Result<FtOutcome, SpefError> {
        let m = network.link_count();
        let mut rng = StdRng::seed_from_u64(config.seed);
        // One batched engine evaluates every candidate: the thousands of
        // cost probes below rebuild DAGs and flows into reused arenas
        // instead of allocating a full routing (FIB included) per probe.
        // The winning routing is materialised once at the end.
        let dests = ospf::validate_ospf_inputs(network, traffic)?;
        let mut engine = RoutingEngine::new(network.graph());
        engine.set_incremental(!config.full_rebuild);
        let mut flows = engine.distribute_fresh();
        let cost_of = |weights: &[f64],
                       engine: &mut RoutingEngine<'_>,
                       flows: &mut spef_core::Flows|
         -> Result<f64, SpefError> {
            ospf::route_flows_into(engine, traffic, &dests, weights, flows)?;
            Ok(FtCost.total_cost(network, flows.aggregate()))
        };

        // Start points: rounded InvCap, then random vectors.
        let max_cap = network
            .capacities()
            .iter()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        let invcap: Vec<f64> = network
            .capacities()
            .iter()
            .map(|c| (max_cap / c).round().clamp(1.0, config.max_weight as f64))
            .collect();
        let mut starts = vec![invcap];
        for _ in 0..config.restarts {
            starts.push(
                (0..m)
                    .map(|_| rng.random_range(1..=config.max_weight) as f64)
                    .collect(),
            );
        }

        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut trace = Vec::new();
        let mut evaluations = 0;

        for start in starts {
            let mut weights = start;
            let mut cost = cost_of(&weights, &mut engine, &mut flows)?;
            evaluations += 1;
            let mut improved = true;
            while improved && evaluations < config.max_evaluations {
                improved = false;
                // Scan links in random order; first-improvement per link.
                let mut order: Vec<usize> = (0..m).collect();
                shuffle(&mut order, &mut rng);
                'links: for e in order {
                    let original = weights[e];
                    for cand in 1..=config.max_weight {
                        let cand = cand as f64;
                        if cand == original {
                            continue;
                        }
                        weights[e] = cand;
                        let c_new = cost_of(&weights, &mut engine, &mut flows)?;
                        evaluations += 1;
                        if c_new < cost - 1e-9 {
                            cost = c_new;
                            improved = true;
                            trace.push(cost);
                            continue 'links; // keep the improvement, next link
                        }
                        weights[e] = original;
                        if evaluations >= config.max_evaluations {
                            break 'links;
                        }
                    }
                }
            }
            match &best {
                Some((bc, ..)) if *bc <= cost => {}
                _ => best = Some((cost, weights.clone())),
            }
            if evaluations >= config.max_evaluations {
                break;
            }
        }

        let (cost, weights) = best.expect("at least one start point evaluated");
        // Materialise the winning routing (flows + FIB) exactly once.
        let routing = OspfRouting::route_with_weights(network, traffic, &weights)?;
        Ok(FtOutcome {
            weights,
            cost,
            routing,
            cost_trace: trace,
            evaluations,
            spf_stats: engine.spf_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_topology::standard;

    #[test]
    fn marginal_cost_segments() {
        let c = FtCost;
        assert_eq!(c.marginal(0.0, 1.0), 1.0);
        assert_eq!(c.marginal(0.5, 1.0), 3.0);
        assert_eq!(c.marginal(0.8, 1.0), 10.0);
        assert_eq!(c.marginal(0.95, 1.0), 70.0);
        assert_eq!(c.marginal(1.05, 1.0), 500.0);
        assert_eq!(c.marginal(2.0, 1.0), 5000.0);
    }

    #[test]
    fn cost_is_continuous_at_breakpoints() {
        let c = FtCost;
        for &bp in &FT_BREAKPOINTS {
            let below = c.cost(bp - 1e-9, 1.0);
            let above = c.cost(bp + 1e-9, 1.0);
            assert!((above - below) < 1e-5, "jump at {bp}");
        }
    }

    #[test]
    fn cost_is_convex_increasing() {
        let c = FtCost;
        let mut prev = 0.0;
        let mut prev_slope = 0.0;
        for i in 1..=120 {
            let f = i as f64 / 100.0;
            let v = c.cost(f, 1.0);
            let slope = v - prev;
            assert!(v >= prev, "decreasing at {f}");
            assert!(slope >= prev_slope - 1e-9, "concave kink at {f}");
            prev = v;
            prev_slope = slope;
        }
    }

    #[test]
    fn cost_scales_with_capacity() {
        // Φ is defined per unit flow against utilization: doubling both
        // flow and capacity doubles the cost.
        let c = FtCost;
        assert!((c.cost(1.0, 2.0) * 2.0 - c.cost(2.0, 4.0)).abs() < 1e-9);
    }

    #[test]
    fn matches_fig2_shape_against_beta_curves() {
        // Fig. 2: the FT curve sits near the β-family curves at low load
        // and explodes past u = 0.9 (cost 13+ at u ~ 1 for capacity 1).
        let c = FtCost;
        assert!(c.cost(0.3, 1.0) < 0.5);
        assert!(c.cost(1.0, 1.0) > 10.0);
    }

    #[test]
    fn local_search_improves_on_congested_fig4() {
        // On Fig. 4 at full demand, InvCap OSPF overloads link 1 (util
        // 1.6); the local search must find weights that spread it out.
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let invcap_cost = {
            let r = OspfRouting::route(&net, &tm).unwrap();
            FtCost.total_cost(&net, r.flows().aggregate())
        };
        let cfg = FtConfig {
            max_weight: 10,
            max_evaluations: 2000,
            restarts: 1,
            seed: 7,
            ..FtConfig::default()
        };
        let out = FtOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert!(
            out.cost < invcap_cost * 0.5,
            "search {} vs invcap {invcap_cost}",
            out.cost
        );
        // The optimised routing no longer drives any link past capacity.
        assert!(out.routing.max_link_utilization(&net) <= 1.0 + 1e-9);
    }

    #[test]
    fn local_search_is_deterministic_in_seed() {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let cfg = FtConfig {
            max_weight: 6,
            max_evaluations: 400,
            restarts: 1,
            seed: 3,
            ..FtConfig::default()
        };
        let a = FtOutcome::local_search(&net, &tm, &cfg).unwrap();
        let b = FtOutcome::local_search(&net, &tm, &cfg).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn incremental_probes_match_full_rebuild_search() {
        // The delta-aware engine path must not change the search
        // trajectory in any way: same accepted moves, same trace, same
        // winner, bit for bit.
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let base = FtConfig {
            max_weight: 8,
            max_evaluations: 600,
            restarts: 1,
            seed: 5,
            ..FtConfig::default()
        };
        let full = FtConfig {
            full_rebuild: true,
            ..base.clone()
        };
        let a = FtOutcome::local_search(&net, &tm, &base).unwrap();
        let b = FtOutcome::local_search(&net, &tm, &full).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.cost_trace, b.cost_trace);
        assert_eq!(a.evaluations, b.evaluations);
        assert!(a.spf_stats.incremental_builds > 0, "{:?}", a.spf_stats);
        assert_eq!(b.spf_stats.incremental_builds, 0);
    }

    #[test]
    fn trace_is_monotone_decreasing_within_restart() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let cfg = FtConfig {
            max_weight: 8,
            max_evaluations: 800,
            restarts: 0,
            seed: 1,
            ..FtConfig::default()
        };
        let out = FtOutcome::local_search(&net, &tm, &cfg).unwrap();
        for w in out.cost_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }
}
