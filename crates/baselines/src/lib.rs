//! Baseline traffic-engineering schemes the SPEF paper compares against.
//!
//! * [`ospf`] — "the current version of OSPF, which sets link weight
//!   inversely proportional to its capacity and evenly splits the traffic
//!   over multiple equal-cost shortest paths" (§V): Cisco InvCap weights +
//!   even ECMP. The OSPF curve of Fig. 6, 9, 10.
//! * [`fortz_thorup`] — the piecewise-linear link cost of Fortz & Thorup
//!   (Fig. 2's "FT" curve, TABLE I's "B. Fortz & M. Thorup" column) and a
//!   local-search weight optimiser in their spirit.
//! * [`peft`] — Downward PEFT (Xu–Chiang–Rexford), the link-state protocol
//!   SPEF is contrasted with in §V.D: exponential penalties over *all*
//!   downward paths, not just equal-cost shortest ones.
//! * [`mlu_lp`] — the classic minimise-MLU linear program (TABLE I's
//!   "MLU [19]" column), solved exactly with the `spef-lp` simplex.
//!
//! The β = 0 exact LP lives in `spef-core` (`solve_te` dispatches on β).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fortz_thorup;
pub mod mlu_lp;
pub mod ospf;
pub mod peft;
pub mod robust;
pub(crate) mod util;

pub use fortz_thorup::{FtConfig, FtCost, FtOutcome};
pub use mlu_lp::MluSolution;
pub use ospf::OspfRouting;
pub use peft::PeftRouting;
pub use robust::{RobustConfig, RobustOutcome};
