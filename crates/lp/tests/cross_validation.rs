//! Cross-validation between the three solvers in `spef-lp`.
//!
//! The same min-cost flow instance is solved combinatorially (successive
//! shortest paths) and as an LP (simplex); objective values must agree, and
//! the simplex duals must certify optimality. Max-flow values are checked
//! against the LP formulation too.

use proptest::prelude::*;
use spef_graph::{Graph, NodeId};
use spef_lp::simplex::{LinearProgram, Relation, SimplexWorkspace};
use spef_lp::{max_flow, MinCostFlow, MinCostFlowError};

/// Random strongly connected digraph (backbone cycle + chords) with random
/// capacities/costs and a single random source/sink demand.
fn random_instance() -> impl Strategy<Value = (Graph, Vec<f64>, Vec<f64>, usize, usize, f64)> {
    (3usize..8).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n), 0..(2 * n));
        (
            Just(n),
            chords,
            proptest::collection::vec(1.0f64..8.0, 4 * n),
            proptest::collection::vec(0.0f64..5.0, 4 * n),
            0..n,
            0..n,
            0.5f64..4.0,
        )
            .prop_map(|(n, chords, caps, costs, s, t, demand)| {
                let mut g = Graph::with_nodes(n);
                for i in 0..n {
                    g.add_edge(i.into(), ((i + 1) % n).into());
                }
                for (u, v) in chords {
                    if u != v {
                        g.add_edge(u.into(), v.into());
                    }
                }
                let m = g.edge_count();
                let t = if s == t { (t + 1) % n } else { t };
                (g, caps[..m].to_vec(), costs[..m].to_vec(), s, t, demand)
            })
    })
}

/// Solves the same min-cost flow with the simplex, recycling `ws`'s tableau
/// arena across calls (the flat engine's intended usage pattern).
fn mincost_by_simplex(
    g: &Graph,
    caps: &[f64],
    costs: &[f64],
    s: usize,
    t: usize,
    demand: f64,
    ws: &mut SimplexWorkspace,
) -> Option<f64> {
    let m = g.edge_count();
    let mut lp = LinearProgram::minimize(m);
    for e in 0..m {
        lp.set_objective(e, costs[e]);
        lp.add_constraint(&[(e, 1.0)], Relation::Le, caps[e]);
    }
    for node in g.nodes() {
        let mut row: Vec<(usize, f64)> = Vec::new();
        for &e in g.out_edges(node) {
            row.push((e.index(), 1.0));
        }
        for &e in g.in_edges(node) {
            row.push((e.index(), -1.0));
        }
        let rhs = if node.index() == s {
            demand
        } else if node.index() == t {
            -demand
        } else {
            0.0
        };
        lp.add_constraint(&row, Relation::Eq, rhs);
    }
    lp.solve_with(ws).ok().map(|sol| sol.objective())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mincost_flow_matches_simplex((g, caps, costs, s, t, demand) in random_instance()) {
        let mcf = MinCostFlow::new(&g, &caps, &costs);
        let mut supply = vec![0.0; g.node_count()];
        supply[s] = demand;
        supply[t] = -demand;
        let combinatorial = mcf.solve(&supply);
        let mut ws = SimplexWorkspace::new();
        let lp = mincost_by_simplex(&g, &caps, &costs, s, t, demand, &mut ws);
        // A workspace that just solved a different instance must not leak
        // state into the next solve.
        let lp_reused = mincost_by_simplex(&g, &caps, &costs, s, t, demand, &mut ws);
        prop_assert_eq!(lp, lp_reused, "workspace reuse changed the solution");
        match (combinatorial, lp) {
            (Ok(sol), Some(obj)) => {
                prop_assert!((sol.cost() - obj).abs() < 1e-6,
                    "combinatorial {} vs simplex {}", sol.cost(), obj);
            }
            (Err(MinCostFlowError::Infeasible), None) => {} // both infeasible
            (a, b) => prop_assert!(false, "solvers disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn maxflow_matches_lp((g, caps, _costs, s, t, _d) in random_instance()) {
        let (value, flows) = max_flow(&g, &caps, NodeId::new(s), NodeId::new(t));
        // LP: maximize net out-flow of s subject to conservation + capacity.
        let m = g.edge_count();
        let mut lp = LinearProgram::maximize(m);
        for (e, &cap) in caps.iter().enumerate().take(m) {
            lp.add_constraint(&[(e, 1.0)], Relation::Le, cap);
        }
        for node in g.nodes() {
            if node.index() == s || node.index() == t { continue; }
            let mut row: Vec<(usize, f64)> = Vec::new();
            for &e in g.out_edges(node) { row.push((e.index(), 1.0)); }
            for &e in g.in_edges(node) { row.push((e.index(), -1.0)); }
            lp.add_constraint(&row, Relation::Eq, 0.0);
        }
        for &e in g.out_edges(NodeId::new(s)) {
            lp.set_objective(e.index(), 1.0);
        }
        for &e in g.in_edges(NodeId::new(s)) {
            // Parallel/backward edges into s subtract.
            let cur = -1.0;
            lp.set_objective(e.index(), cur);
        }
        let sol = lp.solve().unwrap();
        prop_assert!((sol.objective() - value).abs() < 1e-6,
            "dinic {} vs lp {}", value, sol.objective());
        // Flows returned by Dinic respect capacities.
        for e in 0..m {
            prop_assert!(flows[e] <= caps[e] + 1e-9);
        }
    }

    #[test]
    fn simplex_duals_certify_optimality((g, caps, costs, s, t, demand) in random_instance()) {
        let m = g.edge_count();
        let mut lp = LinearProgram::minimize(m);
        let mut cap_rows = Vec::new();
        for e in 0..m {
            lp.set_objective(e, costs[e]);
            cap_rows.push(lp.add_constraint(&[(e, 1.0)], Relation::Le, caps[e]));
        }
        let mut node_rows = Vec::new();
        for node in g.nodes() {
            let mut row: Vec<(usize, f64)> = Vec::new();
            for &e in g.out_edges(node) { row.push((e.index(), 1.0)); }
            for &e in g.in_edges(node) { row.push((e.index(), -1.0)); }
            let rhs = if node.index() == s { demand }
                else if node.index() == t { -demand }
                else { 0.0 };
            node_rows.push(lp.add_constraint(&row, Relation::Eq, rhs));
        }
        let Ok(sol) = lp.solve() else { return Ok(()); };
        // Strong duality: c'x == b'y.
        let mut by = 0.0;
        for e in 0..m { by += caps[e] * sol.dual(cap_rows[e]); }
        by += demand * sol.dual(node_rows[s]) - demand * sol.dual(node_rows[t]);
        prop_assert!((sol.objective() - by).abs() < 1e-6,
            "strong duality violated: {} vs {}", sol.objective(), by);
        // Reduced costs nonnegative: c_e - y_cap(e) - (y_u - y_v) >= 0.
        for (e, u, v) in g.edges() {
            let rc = costs[e.index()] - sol.dual(cap_rows[e.index()])
                - (sol.dual(node_rows[u.index()]) - sol.dual(node_rows[v.index()]));
            prop_assert!(rc > -1e-6, "negative reduced cost {rc} on {e}");
            // Complementary slackness on the support.
            if sol.value(e.index()) > 1e-6 {
                prop_assert!(rc.abs() < 1e-6, "support edge {e} has reduced cost {rc}");
            }
        }
    }
}
