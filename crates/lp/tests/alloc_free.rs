//! Verifies the flat-arena engine's steady-state allocation contract: once
//! a [`SimplexWorkspace`] has been warmed on a program shape, further
//! solves perform a small constant number of heap allocations (the returned
//! `Solution`'s vectors) — independent of problem size and pivot count, i.e.
//! the pivot path itself is allocation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spef_lp::simplex::{LinearProgram, Relation, SimplexWorkspace};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A routing-shaped min-cost LP over a ring of `n` nodes with chords:
/// `n` conservation rows + `2n` capacity rows, `2n` variables. Larger `n`
/// means more rows, more columns, and many more pivots.
fn ring_lp(n: usize) -> LinearProgram {
    let m = 2 * n; // ring edges + chords
    let mut lp = LinearProgram::minimize(m);
    for e in 0..m {
        lp.set_objective(e, 1.0 + (e % 5) as f64);
        lp.add_constraint(&[(e, 1.0)], Relation::Le, 4.0 + (e % 3) as f64);
    }
    // Ring edge e: i -> i+1; chord edge n+i: i -> i+2 (mod n).
    for i in 0..n {
        // Out: ring i, chord i; in: ring i-1, chord i-2.
        let row: Vec<(usize, f64)> = vec![
            (i, 1.0),
            (n + i, 1.0),
            ((i + n - 1) % n, -1.0),
            (n + (i + n - 2) % n, -1.0),
        ];
        let rhs = if i == 0 {
            2.5
        } else if i == n / 2 {
            -2.5
        } else {
            0.0
        };
        lp.add_constraint(&row, Relation::Eq, rhs);
    }
    lp
}

/// Allocations of one warmed re-solve of `lp` (workspace already sized).
fn warmed_solve_allocs(lp: &LinearProgram, ws: &mut SimplexWorkspace) -> u64 {
    lp.solve_with(ws).expect("feasible");
    let before = allocations();
    let sol = lp.solve_with(ws).expect("feasible");
    let after = allocations();
    drop(sol);
    after - before
}

#[test]
fn steady_state_solves_allocate_constant_independent_of_size() {
    let small = ring_lp(4);
    let large = ring_lp(40);

    let mut ws = SimplexWorkspace::new();
    let small_allocs = warmed_solve_allocs(&small, &mut ws);
    let large_allocs = warmed_solve_allocs(&large, &mut ws);

    // The returned Solution owns its x/duals vectors; everything else —
    // tableau arena, basis, pivot column cache — is recycled. If any pivot
    // or row build allocated, the 10×-larger LP (with far more pivots)
    // would allocate more.
    assert!(
        small_allocs <= 4,
        "warmed small solve allocated {small_allocs} times"
    );
    assert_eq!(
        small_allocs, large_allocs,
        "allocation count grew with problem size: {small_allocs} -> {large_allocs}"
    );

    // The warm-start path has the same contract.
    let before = allocations();
    let sol = large.resolve(&mut ws).expect("feasible");
    let after = allocations();
    drop(sol);
    assert!(
        after - before <= 4,
        "warm resolve allocated {} times",
        after - before
    );
}
