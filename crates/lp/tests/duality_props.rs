//! Property tests pinning the flat-arena simplex engine to the guarantees
//! the legacy dense engine established: for random routing-shaped LPs the
//! returned primal `x` is feasible, strong duality holds, complementary
//! slackness holds, and the warm-start `resolve` path agrees with a cold
//! solve after rhs perturbations.

use proptest::prelude::*;
use spef_graph::Graph;
use spef_lp::simplex::{LinearProgram, Relation, SimplexWorkspace};

const TOL: f64 = 1e-6;

/// A random strongly connected digraph (backbone cycle + chords) with
/// capacities, costs, and a single source/sink demand — the shape of every
/// LP the TE pipeline builds.
fn random_routing_lp() -> impl Strategy<Value = (Graph, Vec<f64>, Vec<f64>, usize, usize, f64)> {
    (3usize..8).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n), 0..(2 * n));
        (
            Just(n),
            chords,
            proptest::collection::vec(1.0f64..8.0, 4 * n),
            proptest::collection::vec(0.0f64..5.0, 4 * n),
            0..n,
            0..n,
            0.5f64..4.0,
        )
            .prop_map(|(n, chords, caps, costs, s, t, demand)| {
                let mut g = Graph::with_nodes(n);
                for i in 0..n {
                    g.add_edge(i.into(), ((i + 1) % n).into());
                }
                for (u, v) in chords {
                    if u != v {
                        g.add_edge(u.into(), v.into());
                    }
                }
                let m = g.edge_count();
                let t = if s == t { (t + 1) % n } else { t };
                (g, caps[..m].to_vec(), costs[..m].to_vec(), s, t, demand)
            })
    })
}

struct RoutingLp {
    lp: LinearProgram,
    cap_rows: Vec<spef_lp::simplex::ConstraintId>,
    node_rows: Vec<spef_lp::simplex::ConstraintId>,
}

fn build_routing_lp(
    g: &Graph,
    caps: &[f64],
    costs: &[f64],
    s: usize,
    t: usize,
    demand: f64,
) -> RoutingLp {
    let m = g.edge_count();
    let mut lp = LinearProgram::minimize(m);
    let mut cap_rows = Vec::new();
    for e in 0..m {
        lp.set_objective(e, costs[e]);
        cap_rows.push(lp.add_constraint(&[(e, 1.0)], Relation::Le, caps[e]));
    }
    let mut node_rows = Vec::new();
    for node in g.nodes() {
        let mut row: Vec<(usize, f64)> = Vec::new();
        for &e in g.out_edges(node) {
            row.push((e.index(), 1.0));
        }
        for &e in g.in_edges(node) {
            row.push((e.index(), -1.0));
        }
        let rhs = if node.index() == s {
            demand
        } else if node.index() == t {
            -demand
        } else {
            0.0
        };
        node_rows.push(lp.add_constraint(&row, Relation::Eq, rhs));
    }
    RoutingLp {
        lp,
        cap_rows,
        node_rows,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The primal certificate: `x ≥ 0`, within capacity on every link, and
    /// exactly conserving flow at every node.
    #[test]
    fn returned_x_is_feasible((g, caps, costs, s, t, demand) in random_routing_lp()) {
        let built = build_routing_lp(&g, &caps, &costs, s, t, demand);
        let Ok(sol) = built.lp.solve() else { return Ok(()); };
        for (e, &cap) in caps.iter().enumerate() {
            prop_assert!(sol.value(e) >= -TOL, "negative flow {} on e{e}", sol.value(e));
            prop_assert!(sol.value(e) <= cap + TOL,
                "flow {} exceeds cap {} on e{e}", sol.value(e), cap);
        }
        let div = g.divergence(sol.values());
        for node in g.nodes() {
            let want = if node.index() == s { demand }
                else if node.index() == t { -demand }
                else { 0.0 };
            prop_assert!((div[node.index()] - want).abs() < TOL,
                "conservation violated at {node}: {} vs {want}", div[node.index()]);
        }
    }

    /// The dual certificate: strong duality and complementary slackness,
    /// i.e. the duals prove the primal optimal.
    #[test]
    fn strong_duality_and_complementary_slackness(
        (g, caps, costs, s, t, demand) in random_routing_lp()
    ) {
        let built = build_routing_lp(&g, &caps, &costs, s, t, demand);
        let Ok(sol) = built.lp.solve() else { return Ok(()); };
        // Strong duality: c'x == b'y over all rows.
        let mut by = 0.0;
        for (e, &cap) in caps.iter().enumerate() {
            by += cap * sol.dual(built.cap_rows[e]);
        }
        by += demand * sol.dual(built.node_rows[s]) - demand * sol.dual(built.node_rows[t]);
        prop_assert!((sol.objective() - by).abs() < TOL,
            "strong duality violated: {} vs {}", sol.objective(), by);
        for (e, u, v) in g.edges() {
            let rc = costs[e.index()] - sol.dual(built.cap_rows[e.index()])
                - (sol.dual(built.node_rows[u.index()]) - sol.dual(built.node_rows[v.index()]));
            // Dual feasibility: reduced costs non-negative (min problem).
            prop_assert!(rc > -TOL, "negative reduced cost {rc} on {e}");
            // Complementary slackness, variable side.
            if sol.value(e.index()) > TOL {
                prop_assert!(rc.abs() < TOL, "support edge {e} has reduced cost {rc}");
            }
            // Complementary slackness, constraint side: a capacity row with
            // a nonzero price must be binding.
            let y = sol.dual(built.cap_rows[e.index()]);
            if y.abs() > TOL {
                prop_assert!((sol.value(e.index()) - caps[e.index()]).abs() < TOL,
                    "priced row on {e} is slack: x = {}, cap = {}",
                    sol.value(e.index()), caps[e.index()]);
            }
        }
    }

    /// Warm-started re-solves after rhs perturbation agree with cold solves
    /// on the objective, and the warm duals still certify optimality.
    #[test]
    fn resolve_matches_cold_after_demand_change(
        (g, caps, costs, s, t, demand) in random_routing_lp(),
        scale in 0.25f64..1.5,
    ) {
        let mut ws = SimplexWorkspace::new();
        let first = build_routing_lp(&g, &caps, &costs, s, t, demand);
        let warm_base = first.lp.resolve(&mut ws);
        let cold_base = first.lp.solve();
        prop_assert_eq!(warm_base.is_ok(), cold_base.is_ok());

        let second = build_routing_lp(&g, &caps, &costs, s, t, demand * scale);
        let warm = second.lp.resolve(&mut ws);
        let cold = second.lp.solve();
        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                prop_assert!((w.objective() - c.objective()).abs() < TOL,
                    "warm {} vs cold {}", w.objective(), c.objective());
                // The warm vertex may differ on a degenerate face, but its
                // duals must still satisfy strong duality for the new rhs.
                let mut by = 0.0;
                for (e, &cap) in caps.iter().enumerate() {
                    by += cap * w.dual(second.cap_rows[e]);
                }
                by += demand * scale
                    * (w.dual(second.node_rows[s]) - w.dual(second.node_rows[t]));
                prop_assert!((w.objective() - by).abs() < TOL,
                    "warm duals do not certify: {} vs {}", w.objective(), by);
            }
            (Err(w), Err(c)) => prop_assert_eq!(w, c, "warm and cold errors differ"),
            (w, c) => prop_assert!(false, "warm/cold disagree: {w:?} vs {c:?}"),
        }
    }
}
