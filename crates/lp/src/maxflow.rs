//! Maximum flow via Dinic's algorithm.
//!
//! Used by the experiment harness to check that a scaled traffic matrix is
//! routable at all (the paper scales demands "until the maximal link
//! utilization almost reaches 100% with SPEF"; max-flow bounds give a quick
//! per-pair feasibility certificate before running the convex solver).

use spef_graph::{EdgeId, Graph, NodeId};

const EPS: f64 = 1e-12;

/// Computes the maximum `source → sink` flow value under `capacities`, and
/// the per-edge flows achieving it.
///
/// Returns `(value, flows)` where `flows[e]` is the flow on edge `e`.
///
/// # Panics
///
/// Panics if `capacities.len() != graph.edge_count()`, if any capacity is
/// negative or NaN, if `source == sink`, or if either node is out of range.
///
/// # Example
///
/// ```
/// use spef_graph::Graph;
/// use spef_lp::max_flow;
///
/// let mut g = Graph::with_nodes(4);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(0.into(), 2.into());
/// g.add_edge(1.into(), 3.into());
/// g.add_edge(2.into(), 3.into());
/// let (value, _flows) = max_flow(&g, &[3.0, 2.0, 2.0, 2.0], 0.into(), 3.into());
/// assert_eq!(value, 4.0);
/// ```
pub fn max_flow(
    graph: &Graph,
    capacities: &[f64],
    source: NodeId,
    sink: NodeId,
) -> (f64, Vec<f64>) {
    assert_eq!(
        capacities.len(),
        graph.edge_count(),
        "capacities length mismatch"
    );
    assert!(
        capacities.iter().all(|&c| !c.is_nan() && c >= 0.0),
        "capacities must be non-negative"
    );
    assert!(source.index() < graph.node_count(), "source out of range");
    assert!(sink.index() < graph.node_count(), "sink out of range");
    assert_ne!(source, sink, "source and sink must differ");

    let n = graph.node_count();
    let e_count = graph.edge_count();
    // Residual arcs: 2e forward, 2e+1 backward.
    let mut resid = vec![0.0; 2 * e_count];
    for e in 0..e_count {
        resid[2 * e] = capacities[e];
    }

    // Flat residual adjacency, built once and shared by every BFS/DFS
    // round: node `u`'s arcs are `adj[start[u]..start[u + 1]]` (forward
    // arcs of out-edges, then backward arcs of in-edges), with arc heads
    // precomputed. The legacy implementation materialised a fresh arc
    // vector per node visit.
    let mut start = vec![0usize; n + 1];
    for u in 0..n {
        let u_node = NodeId::new(u);
        start[u + 1] = start[u] + graph.out_edges(u_node).len() + graph.in_edges(u_node).len();
    }
    let mut adj = Vec::with_capacity(start[n]);
    for u in 0..n {
        let u_node = NodeId::new(u);
        adj.extend(graph.out_edges(u_node).iter().map(|&e| 2 * e.index()));
        adj.extend(graph.in_edges(u_node).iter().map(|&e| 2 * e.index() + 1));
    }
    let mut head_of = vec![0usize; 2 * e_count];
    for e in 0..e_count {
        head_of[2 * e] = graph.target(EdgeId::new(e)).index();
        head_of[2 * e + 1] = graph.source(EdgeId::new(e)).index();
    }

    let mut level = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    // DFS arc cursors: count down from the end of each node's arc slice,
    // matching the legacy `last()`/`pop()` traversal order exactly.
    let mut cursor = vec![0usize; n];
    let mut total = 0.0;
    loop {
        // BFS level graph.
        level.fill(usize::MAX);
        level[source.index()] = 0;
        queue.clear();
        queue.push_back(source.index());
        while let Some(u) = queue.pop_front() {
            for &arc in &adj[start[u]..start[u + 1]] {
                let v = head_of[arc];
                if resid[arc] > EPS && level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[sink.index()] == usize::MAX {
            break;
        }
        // DFS blocking flow.
        cursor.copy_from_slice(&start[1..]);
        loop {
            let pushed = dfs_push(
                source.index(),
                sink.index(),
                f64::INFINITY,
                &mut resid,
                &level,
                &adj,
                &start,
                &mut cursor,
                &head_of,
            );
            if pushed <= EPS {
                break;
            }
            total += pushed;
        }
    }

    let flows: Vec<f64> = (0..e_count).map(|e| resid[2 * e + 1]).collect();
    (total, flows)
}

#[allow(clippy::too_many_arguments)]
fn dfs_push(
    u: usize,
    sink: usize,
    limit: f64,
    resid: &mut [f64],
    level: &[usize],
    adj: &[usize],
    start: &[usize],
    cursor: &mut [usize],
    head_of: &[usize],
) -> f64 {
    if u == sink {
        return limit;
    }
    while cursor[u] > start[u] {
        let arc = adj[cursor[u] - 1];
        let v = head_of[arc];
        if resid[arc] > EPS && level[v] == level[u] + 1 {
            let pushed = dfs_push(
                v,
                sink,
                limit.min(resid[arc]),
                resid,
                level,
                adj,
                start,
                cursor,
                head_of,
            );
            if pushed > EPS {
                resid[arc] -= pushed;
                resid[arc ^ 1] += pushed;
                return pushed;
            }
        }
        cursor[u] -= 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        let (v, f) = max_flow(&g, &[5.0], 0.into(), 1.into());
        assert_eq!(v, 5.0);
        assert_eq!(f, vec![5.0]);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS Figure 26.1-style network, max flow 23.
        let mut g = Graph::with_nodes(6);
        let caps = [16.0, 13.0, 12.0, 4.0, 14.0, 9.0, 20.0, 7.0, 4.0];
        g.add_edge(0.into(), 1.into()); // 16
        g.add_edge(0.into(), 2.into()); // 13
        g.add_edge(1.into(), 3.into()); // 12
        g.add_edge(2.into(), 1.into()); // 4
        g.add_edge(2.into(), 4.into()); // 14
        g.add_edge(3.into(), 2.into()); // 9
        g.add_edge(3.into(), 5.into()); // 20
        g.add_edge(4.into(), 3.into()); // 7
        g.add_edge(4.into(), 5.into()); // 4
        let (v, flows) = max_flow(&g, &caps, 0.into(), 5.into());
        assert_eq!(v, 23.0);
        // Flow conservation at interior nodes.
        let div = g.divergence(&flows);
        for d in &div[1..=4] {
            assert!(d.abs() < 1e-9);
        }
        assert!((div[0] - 23.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_gives_zero() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        let (v, _) = max_flow(&g, &[1.0], 0.into(), 2.into());
        assert_eq!(v, 0.0);
    }

    #[test]
    fn needs_augmenting_through_backward_arc() {
        // Diamond with a crossing edge; greedy path 0-1-2-3 must be undone.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into()); // 1
        g.add_edge(0.into(), 2.into()); // 1
        g.add_edge(1.into(), 2.into()); // 1
        g.add_edge(1.into(), 3.into()); // 1
        g.add_edge(2.into(), 3.into()); // 1
        let (v, _) = max_flow(&g, &[1.0; 5], 0.into(), 3.into());
        assert_eq!(v, 2.0);
    }

    #[test]
    fn respects_capacity_zero() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        let (v, _) = max_flow(&g, &[0.0], 0.into(), 1.into());
        assert_eq!(v, 0.0);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_panics() {
        let g = Graph::with_nodes(2);
        max_flow(&g, &[], 0.into(), 0.into());
    }
}
