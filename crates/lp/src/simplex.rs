//! Two-phase dense-tableau simplex with dual extraction.
//!
//! Solves `min/max c'x` subject to `Ax {≤, =, ≥} b`, `x ≥ 0`.
//!
//! The solver returns both the primal solution and the **dual values** of
//! every constraint. Duals follow the Lagrangian convention for a
//! *minimisation* problem `L(x, y) = c'x − Σ_i y_i (a_i'x − b_i)`:
//!
//! * `y_i ≤ 0` for `≤` constraints,
//! * `y_i ≥ 0` for `≥` constraints,
//! * `y_i` free for `=` constraints,
//! * reduced costs `c − A'y ≥ 0`, with equality on the support of `x*`,
//! * strong duality `c'x* = b'y*`.
//!
//! For maximisation problems the duals are reported for the equivalent
//! negated minimisation, then negated back, so that `y_i ≥ 0` for binding
//! `≤` rows — the familiar "shadow price" convention.
//!
//! This is exactly what the TE experiments need: in the β = 0 load-balance
//! LP the optimal first weight of link `(i,j)` is
//! `w_ij = q_ij − y_capacity(i,j)` (Example 3 / TABLE I of the paper).
//!
//! Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
//! after a stall threshold, which guarantees termination.

use std::fmt;

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a'x ≤ b`
    Le,
    /// `a'x = b`
    Eq,
    /// `a'x ≥ b`
    Ge,
}

/// Errors returned by [`LinearProgram::solve`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimplexError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A coefficient, bound, or objective entry was NaN/infinite, or a
    /// variable index was out of range.
    InvalidModel(String),
}

impl fmt::Display for SimplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "linear program is infeasible"),
            SimplexError::Unbounded => write!(f, "linear program is unbounded"),
            SimplexError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for SimplexError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Minimize,
    Maximize,
}

#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Build with [`LinearProgram::minimize`] or [`LinearProgram::maximize`],
/// set objective coefficients, add constraint rows, then [`solve`].
///
/// [`solve`]: LinearProgram::solve
///
/// # Example
///
/// ```
/// use spef_lp::simplex::{LinearProgram, Relation};
///
/// # fn main() -> Result<(), spef_lp::simplex::SimplexError> {
/// // min x0 + 2 x1  s.t.  x0 + x1 >= 3,  x1 <= 1
/// let mut lp = LinearProgram::minimize(2);
/// lp.set_objective(0, 1.0);
/// lp.set_objective(1, 2.0);
/// let supply = lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
/// lp.add_constraint(&[(1, 1.0)], Relation::Le, 1.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective() - 3.0).abs() < 1e-9); // x = (3, 0)
/// assert!((sol.dual(supply) - 1.0).abs() < 1e-9); // marginal cost of supply
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    sense: Sense,
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

/// Identifier of a constraint row, used to query duals from a [`Solution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(usize);

/// An optimal solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    objective: f64,
    x: Vec<f64>,
    duals: Vec<f64>,
}

impl Solution {
    /// Optimal objective value (in the original min/max sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Optimal value of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: usize) -> f64 {
        self.x[var]
    }

    /// All variable values, indexed by variable.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Dual value (shadow price) of constraint `c`.
    ///
    /// See the module docs for sign conventions.
    ///
    /// # Panics
    ///
    /// Panics if `c` refers to a constraint of a different program.
    pub fn dual(&self, c: ConstraintId) -> f64 {
        self.duals[c.0]
    }

    /// All constraint duals, in order of `add_constraint` calls.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;

impl LinearProgram {
    /// Creates a minimisation problem over `num_vars` non-negative
    /// variables, all objective coefficients initially zero.
    pub fn minimize(num_vars: usize) -> Self {
        LinearProgram {
            sense: Sense::Minimize,
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
        }
    }

    /// Creates a maximisation problem over `num_vars` non-negative
    /// variables, all objective coefficients initially zero.
    pub fn maximize(num_vars: usize) -> Self {
        LinearProgram {
            sense: Sense::Maximize,
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Adds the constraint `Σ coeffs[k].1 · x_{coeffs[k].0}  relation  rhs`
    /// and returns its id. Repeated variable indices are summed.
    pub fn add_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> ConstraintId {
        let id = ConstraintId(self.rows.len());
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        id
    }

    fn validate(&self) -> Result<(), SimplexError> {
        for (i, &c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(SimplexError::InvalidModel(format!(
                    "objective coefficient of x{i} is {c}"
                )));
            }
        }
        for (r, row) in self.rows.iter().enumerate() {
            if !row.rhs.is_finite() {
                return Err(SimplexError::InvalidModel(format!(
                    "rhs of constraint {r} is {}",
                    row.rhs
                )));
            }
            for &(v, a) in &row.coeffs {
                if v >= self.num_vars {
                    return Err(SimplexError::InvalidModel(format!(
                        "constraint {r} references variable x{v} but the program has {} variables",
                        self.num_vars
                    )));
                }
                if !a.is_finite() {
                    return Err(SimplexError::InvalidModel(format!(
                        "constraint {r} has coefficient {a} on x{v}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`SimplexError::Infeasible`] if no `x ≥ 0` satisfies the rows,
    /// * [`SimplexError::Unbounded`] if the objective is unbounded,
    /// * [`SimplexError::InvalidModel`] for NaN/infinite input or variable
    ///   indices out of range.
    pub fn solve(&self) -> Result<Solution, SimplexError> {
        self.validate()?;
        let mut tab = Tableau::build(self);
        tab.phase1()?;
        tab.phase2()?;
        Ok(tab.extract(self))
    }
}

/// Dense simplex tableau.
///
/// Column layout: `[structural 0..n) | slack/surplus | artificial]`, with an
/// extra rhs column and an objective row appended after the constraint rows.
struct Tableau {
    /// `rows × (cols + 1)`; last column is the rhs. The last row is the
    /// objective (reduced-cost) row.
    t: Vec<Vec<f64>>,
    m: usize,
    cols: usize,
    /// Basic column of each constraint row.
    basis: Vec<usize>,
    /// For each original row: (added column index, +1.0 for slack/artificial
    /// or −1.0 for surplus) used to read off the dual.
    dual_col: Vec<(usize, f64)>,
    /// Rows that turned out linearly dependent (dual = 0, never pivoted).
    row_active: Vec<bool>,
    /// First artificial column (all columns ≥ this are artificial).
    art_start: usize,
    /// Minimisation costs of the structural columns (post sense-normalisation).
    costs: Vec<f64>,
    n_struct: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.rows.len();
        let n = lp.num_vars;

        // Normalised rows: rhs >= 0.
        let mut rel = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut flip = Vec::with_capacity(m);
        for row in &lp.rows {
            if row.rhs < 0.0 {
                flip.push(true);
                rhs.push(-row.rhs);
                rel.push(match row.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                });
            } else {
                flip.push(false);
                rhs.push(row.rhs);
                rel.push(row.relation);
            }
        }

        let n_slack = rel
            .iter()
            .filter(|r| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let n_art = rel
            .iter()
            .filter(|r| matches!(r, Relation::Ge | Relation::Eq))
            .count();
        let cols = n + n_slack + n_art;
        let art_start = n + n_slack;

        let mut t = vec![vec![0.0; cols + 1]; m + 1];
        let mut basis = vec![usize::MAX; m];
        let mut dual_col = vec![(usize::MAX, 1.0); m];

        for (i, row) in lp.rows.iter().enumerate() {
            let sign = if flip[i] { -1.0 } else { 1.0 };
            for &(v, a) in &row.coeffs {
                t[i][v] += sign * a;
            }
            t[i][cols] = rhs[i];
        }

        let mut next_slack = n;
        let mut next_art = art_start;
        for i in 0..m {
            match rel[i] {
                Relation::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    dual_col[i] = (next_slack, 1.0);
                    next_slack += 1;
                }
                Relation::Ge => {
                    t[i][next_slack] = -1.0;
                    dual_col[i] = (next_art, 1.0);
                    next_slack += 1;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    dual_col[i] = (next_art, 1.0);
                    next_art += 1;
                }
            }
        }

        let costs: Vec<f64> = match lp.sense {
            Sense::Minimize => lp.objective.clone(),
            Sense::Maximize => lp.objective.iter().map(|c| -c).collect(),
        };

        Tableau {
            t,
            m,
            cols,
            basis,
            dual_col,
            row_active: vec![true; m],
            art_start,
            costs,
            n_struct: n,
        }
    }

    /// Phase 1: minimise the sum of artificial variables.
    fn phase1(&mut self) -> Result<(), SimplexError> {
        if self.art_start == self.cols {
            return Ok(()); // no artificials needed
        }
        // Objective row: sum of artificial rows, negated into reduced costs.
        // cost of artificial = 1, others 0. Reduced cost row r_j = c_j - sum
        // of rows where the basic variable is artificial.
        let obj = self.m;
        for j in 0..=self.cols {
            self.t[obj][j] = 0.0;
        }
        for j in self.art_start..self.cols {
            self.t[obj][j] = 1.0;
        }
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                let row = self.t[i].clone();
                for (dst, src) in self.t[obj].iter_mut().zip(&row).take(self.cols + 1) {
                    *dst -= *src;
                }
            }
        }
        self.iterate(self.cols)?;
        let infeas = -self.t[obj][self.cols];
        if infeas > 1e-7 {
            return Err(SimplexError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis.
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                let pivot_col = (0..self.art_start).find(|&j| self.t[i][j].abs() > PIVOT_EPS);
                match pivot_col {
                    Some(j) => self.pivot(i, j),
                    None => {
                        // Redundant row: all-zero over structural+slack.
                        self.row_active[i] = false;
                    }
                }
            }
        }
        Ok(())
    }

    /// Phase 2: minimise the true costs, artificial columns barred.
    fn phase2(&mut self) -> Result<(), SimplexError> {
        let obj = self.m;
        for j in 0..=self.cols {
            self.t[obj][j] = 0.0;
        }
        for (j, &c) in self.costs.iter().enumerate() {
            self.t[obj][j] = c;
        }
        // Zero out reduced costs of basic columns.
        for i in 0..self.m {
            if !self.row_active[i] {
                continue;
            }
            let b = self.basis[i];
            let cb = if b < self.n_struct {
                self.costs[b]
            } else {
                0.0
            };
            if cb != 0.0 {
                let row = self.t[i].clone();
                for (dst, src) in self.t[obj].iter_mut().zip(&row).take(self.cols + 1) {
                    *dst -= cb * *src;
                }
            }
        }
        self.iterate(self.art_start)
    }

    /// Runs simplex iterations over columns `0..allowed_cols`.
    fn iterate(&mut self, allowed_cols: usize) -> Result<(), SimplexError> {
        let obj = self.m;
        // Dantzig's rule, with Bland's rule after a stall threshold to
        // guarantee termination under degeneracy.
        let bland_after = 50 * (self.m + self.cols) + 1000;
        let hard_cap = 400 * (self.m + self.cols) + 20_000;
        for iter in 0..hard_cap {
            let bland = iter >= bland_after;
            let entering = if bland {
                (0..allowed_cols).find(|&j| self.t[obj][j] < -EPS)
            } else {
                let mut best = None;
                let mut best_val = -EPS;
                for j in 0..allowed_cols {
                    let r = self.t[obj][j];
                    if r < best_val {
                        best_val = r;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(j) = entering else {
                return Ok(()); // optimal
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                if !self.row_active[i] {
                    continue;
                }
                let a = self.t[i][j];
                if a > PIVOT_EPS {
                    let ratio = self.t[i][self.cols] / a;
                    let better = match leave {
                        None => true,
                        Some(li) => {
                            ratio < best_ratio - EPS
                                || (bland
                                    && (ratio - best_ratio).abs() <= EPS
                                    && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(i) = leave else {
                return Err(SimplexError::Unbounded);
            };
            self.pivot(i, j);
        }
        // The Bland fallback makes cycling impossible; running into the cap
        // indicates a numerical pathology, which we surface as a model error.
        Err(SimplexError::InvalidModel(
            "simplex iteration cap exceeded (numerically ill-conditioned input)".to_string(),
        ))
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let piv = self.t[pivot_row][pivot_col];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        let inv = 1.0 / piv;
        for j in 0..=self.cols {
            self.t[pivot_row][j] *= inv;
        }
        self.t[pivot_row][pivot_col] = 1.0;
        let prow = self.t[pivot_row].clone();
        for i in 0..=self.m {
            if i == pivot_row {
                continue;
            }
            let factor = self.t[i][pivot_col];
            if factor.abs() > 0.0 {
                for (dst, src) in self.t[i].iter_mut().zip(&prow).take(self.cols + 1) {
                    *dst -= factor * *src;
                }
                self.t[i][pivot_col] = 0.0;
            }
        }
        self.basis[pivot_row] = pivot_col;
    }

    fn extract(&self, lp: &LinearProgram) -> Solution {
        let mut x = vec![0.0; lp.num_vars];
        for i in 0..self.m {
            if self.row_active[i] && self.basis[i] < lp.num_vars {
                x[self.basis[i]] = self.t[i][self.cols];
            }
        }
        let mut objective: f64 = x.iter().zip(&lp.objective).map(|(xi, ci)| xi * ci).sum();
        // Duals from the reduced costs of the per-row added columns:
        // r_added = c_added − y_i · coeff = −y_i · coeff (added costs are 0).
        let obj_row = &self.t[self.m];
        let mut duals = vec![0.0; self.m];
        for (i, dual) in duals.iter_mut().enumerate() {
            if !self.row_active[i] {
                continue;
            }
            let (col, coeff) = self.dual_col[i];
            let mut y = -obj_row[col] / coeff;
            // Rows whose rhs was negated have flipped duals.
            if lp.rows[i].rhs < 0.0 {
                y = -y;
            }
            *dual = y;
        }
        if lp.sense == Sense::Maximize {
            for y in &mut duals {
                *y = -*y;
            }
        }
        // Clean tiny numerical noise.
        for v in x.iter_mut().chain(duals.iter_mut()) {
            if v.abs() < 1e-11 {
                *v = 0.0;
            }
        }
        if objective.abs() < 1e-11 {
            objective = 0.0;
        }
        Solution {
            objective,
            x,
            duals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_max_le() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6).
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 5.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        let c2 = lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        let c3 = lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value(0), 2.0);
        assert_close(sol.value(1), 6.0);
        // Shadow prices (max convention, y >= 0): 0, 1.5, 1.
        assert_close(sol.dual(c2), 1.5);
        assert_close(sol.dual(c3), 1.0);
    }

    #[test]
    fn min_with_ge_rows_two_phase() {
        // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 -> optimum 9 at (3, 1).
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        let c1 = lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
        let c2 = lp.add_constraint(&[(0, 1.0), (1, 3.0)], Relation::Ge, 6.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 9.0);
        assert_close(sol.value(0), 3.0);
        assert_close(sol.value(1), 1.0);
        // Strong duality: b'y = 4*y1 + 6*y2 = 9 with y = (1.5, 0.5).
        assert_close(sol.dual(c1), 1.5);
        assert_close(sol.dual(c2), 0.5);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(0), 2.0);
        assert_close(sol.value(1), 1.0);
        assert_close(sol.objective(), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), Err(SimplexError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve(), Err(SimplexError::Unbounded));
    }

    #[test]
    fn negative_rhs_normalised() {
        // x >= 2 expressed as -x <= -2.
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, 1.0);
        let c = lp.add_constraint(&[(0, -1.0)], Relation::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(0), 2.0);
        // Same marginal as `x >= 2`, whose dual in the min convention is +1,
        // seen through the negated row: -x <= -2 has y <= 0 and
        // c - A'y = 1 - (-1)(y) => y = -1.
        assert_close(sol.dual(c), -1.0);
    }

    #[test]
    fn redundant_rows_get_zero_dual() {
        // Same constraint twice.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 2.0);
        // One of the two identical rows carries the dual, the other is
        // redundant; their sum must equal the marginal cost 1.
        assert_close(sol.duals()[0] + sol.duals()[1], 1.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example (Beale's cycling LP without Bland
        // safeguards). The solver must terminate and find -0.05.
        let mut lp = LinearProgram::minimize(4);
        for (i, c) in [-0.75, 150.0, -0.02, 6.0].iter().enumerate() {
            lp.set_objective(i, *c);
        }
        lp.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), -0.05);
    }

    #[test]
    fn free_of_constraints_zero_or_unbounded() {
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 0.0);

        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        assert_eq!(lp.solve(), Err(SimplexError::Unbounded));
    }

    #[test]
    fn complementary_slackness_holds() {
        let mut lp = LinearProgram::maximize(3);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, 4.0);
        lp.set_objective(2, 3.0);
        let rows = [
            lp.add_constraint(&[(0, 2.0), (1, 3.0), (2, 1.0)], Relation::Le, 5.0),
            lp.add_constraint(&[(0, 4.0), (1, 1.0), (2, 2.0)], Relation::Le, 11.0),
            lp.add_constraint(&[(0, 3.0), (1, 4.0), (2, 2.0)], Relation::Le, 8.0),
        ];
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 13.0);
        // Strong duality.
        let dual_obj: f64 = [5.0, 11.0, 8.0]
            .iter()
            .zip(rows.iter())
            .map(|(b, &c)| b * sol.dual(c))
            .sum();
        assert_close(dual_obj, 13.0);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, f64::NAN);
        assert!(matches!(lp.solve(), Err(SimplexError::InvalidModel(_))));

        let mut lp = LinearProgram::minimize(1);
        lp.add_constraint(&[(5, 1.0)], Relation::Le, 1.0);
        assert!(matches!(lp.solve(), Err(SimplexError::InvalidModel(_))));
    }

    #[test]
    fn min_cost_routing_shape() {
        // Tiny routing LP: one unit from s to t over two parallel "paths"
        // with costs 1 and 3, the cheap one capped at 0.4.
        // Variables: x0 = cheap path, x1 = expensive path.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        let cap = lp.add_constraint(&[(0, 1.0)], Relation::Le, 0.4);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(0), 0.4);
        assert_close(sol.value(1), 0.6);
        assert_close(sol.objective(), 0.4 + 1.8);
        // Capacity shadow price: relaxing the cap by 1 saves cost 2
        // (min convention: y <= 0).
        assert_close(sol.dual(cap), -2.0);
    }
}
