//! Two-phase simplex on a flat, single-allocation tableau arena, with dual
//! extraction and a reusable workspace / warm-start API.
//!
//! Solves `min/max c'x` subject to `Ax {≤, =, ≥} b`, `x ≥ 0`.
//!
//! The solver returns both the primal solution and the **dual values** of
//! every constraint. Duals follow the Lagrangian convention for a
//! *minimisation* problem `L(x, y) = c'x − Σ_i y_i (a_i'x − b_i)`:
//!
//! * `y_i ≤ 0` for `≤` constraints,
//! * `y_i ≥ 0` for `≥` constraints,
//! * `y_i` free for `=` constraints,
//! * reduced costs `c − A'y ≥ 0`, with equality on the support of `x*`,
//! * strong duality `c'x* = b'y*`.
//!
//! For maximisation problems the duals are reported for the equivalent
//! negated minimisation, then negated back, so that `y_i ≥ 0` for binding
//! `≤` rows — the familiar "shadow price" convention.
//!
//! This is exactly what the TE experiments need: in the β = 0 load-balance
//! LP the optimal first weight of link `(i,j)` is
//! `w_ij = q_ij − y_capacity(i,j)` (Example 3 / TABLE I of the paper).
//!
//! Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
//! after a stall threshold, which guarantees termination.
//!
//! # Engine layout
//!
//! All solver state lives in a [`SimplexWorkspace`]:
//!
//! * the tableau is one row-major `Vec<f64>` arena of `(m + 1) × stride`
//!   entries (`stride = cols + 1`); the trailing entry of each row is the
//!   rhs and the last row is the reduced-cost (objective) row;
//! * a pivot borrows the pivot row against the other rows with
//!   `split_at_mut` and caches the entering column in a scratch buffer, so
//!   the steady-state pivot path performs **zero heap allocations** (the
//!   legacy engine cloned a full row per pivot);
//! * structural columns that are identically zero in every constraint are
//!   **pruned** before the arena is built (a zero column can never enter
//!   the basis; if its minimisation cost is negative the program is
//!   unbounded, otherwise its optimal value is 0), which shrinks the
//!   per-pivot row stride on sparse models;
//! * [`LinearProgram::solve_with`] reuses a workspace's allocations across
//!   solves, and [`LinearProgram::resolve`] additionally **warm-starts**
//!   from the previous optimal basis when the constraint structure is
//!   unchanged (same rows/relations/sparsity; coefficients, rhs magnitudes
//!   and costs may differ), falling back to a cold two-phase solve whenever
//!   the old basis is unusable.
//!
//! `solve` and `solve_with` run the exact cold pivot sequence of the legacy
//! dense engine, so their solutions are bit-identical to it; `resolve` may
//! return a different vertex of a degenerate optimal face (same objective
//! value, duals still certify optimality).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Relation of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a'x ≤ b`
    Le,
    /// `a'x = b`
    Eq,
    /// `a'x ≥ b`
    Ge,
}

/// Errors returned by [`LinearProgram::solve`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimplexError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A coefficient, bound, or objective entry was NaN/infinite, or a
    /// variable index was out of range.
    InvalidModel(String),
}

impl fmt::Display for SimplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "linear program is infeasible"),
            SimplexError::Unbounded => write!(f, "linear program is unbounded"),
            SimplexError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for SimplexError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Minimize,
    Maximize,
}

#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

impl Row {
    /// The relation after rhs-sign normalisation (rows with a negative rhs
    /// are negated so every tableau rhs is non-negative).
    fn normalized_relation(&self) -> Relation {
        if self.rhs < 0.0 {
            match self.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            }
        } else {
            self.relation
        }
    }
}

/// Monotone source of program identity tokens; lets a [`Solution`] detect
/// a [`ConstraintId`] minted by a different program.
static NEXT_PROGRAM_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A linear program over non-negative variables.
///
/// Build with [`LinearProgram::minimize`] or [`LinearProgram::maximize`],
/// set objective coefficients, add constraint rows, then [`solve`]
/// (or [`solve_with`] / [`resolve`] to reuse a [`SimplexWorkspace`]).
///
/// [`solve`]: LinearProgram::solve
/// [`solve_with`]: LinearProgram::solve_with
/// [`resolve`]: LinearProgram::resolve
///
/// # Example
///
/// ```
/// use spef_lp::simplex::{LinearProgram, Relation};
///
/// # fn main() -> Result<(), spef_lp::simplex::SimplexError> {
/// // min x0 + 2 x1  s.t.  x0 + x1 >= 3,  x1 <= 1
/// let mut lp = LinearProgram::minimize(2);
/// lp.set_objective(0, 1.0);
/// lp.set_objective(1, 2.0);
/// let supply = lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
/// lp.add_constraint(&[(1, 1.0)], Relation::Le, 1.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective() - 3.0).abs() < 1e-9); // x = (3, 0)
/// assert!((sol.dual(supply) - 1.0).abs() < 1e-9); // marginal cost of supply
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    sense: Sense,
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
    token: u64,
}

/// Identifier of a constraint row, used to query duals from a [`Solution`].
///
/// An id is tagged with the identity of the program that minted it, so
/// handing it to a [`Solution`] of a *different* program is a deterministic
/// panic instead of a silently wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId {
    index: usize,
    program: u64,
}

/// An optimal solution of a [`LinearProgram`].
#[derive(Debug, Clone)]
pub struct Solution {
    objective: f64,
    x: Vec<f64>,
    duals: Vec<f64>,
    program: u64,
}

/// Value equality over the numeric solution (objective, `x`, duals). The
/// owning-program tag is deliberately excluded so that numerically
/// identical solutions of independently built but identical programs still
/// compare equal.
impl PartialEq for Solution {
    fn eq(&self, other: &Self) -> bool {
        self.objective == other.objective && self.x == other.x && self.duals == other.duals
    }
}

impl Solution {
    /// Optimal objective value (in the original min/max sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Optimal value of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: usize) -> f64 {
        self.x[var]
    }

    /// All variable values, indexed by variable.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Dual value (shadow price) of constraint `c`.
    ///
    /// See the module docs for sign conventions.
    ///
    /// # Panics
    ///
    /// Panics if `c` refers to a constraint of a different program (the id
    /// carries its owning program's identity), or if `c` was added after
    /// this solution was computed.
    pub fn dual(&self, c: ConstraintId) -> f64 {
        assert_eq!(
            c.program, self.program,
            "ConstraintId belongs to a different LinearProgram"
        );
        self.duals[c.index]
    }

    /// All constraint duals, in order of `add_constraint` calls.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;

impl LinearProgram {
    fn new(sense: Sense, num_vars: usize) -> Self {
        LinearProgram {
            sense,
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
            token: NEXT_PROGRAM_TOKEN.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Creates a minimisation problem over `num_vars` non-negative
    /// variables, all objective coefficients initially zero.
    pub fn minimize(num_vars: usize) -> Self {
        LinearProgram::new(Sense::Minimize, num_vars)
    }

    /// Creates a maximisation problem over `num_vars` non-negative
    /// variables, all objective coefficients initially zero.
    pub fn maximize(num_vars: usize) -> Self {
        LinearProgram::new(Sense::Maximize, num_vars)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// `true` for programs built with [`LinearProgram::maximize`].
    pub fn is_maximize(&self) -> bool {
        self.sense == Sense::Maximize
    }

    /// The objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn objective_coeff(&self, var: usize) -> f64 {
        self.objective[var]
    }

    /// Iterates the constraint rows as `(coeffs, relation, rhs)`, in order
    /// of `add_constraint` calls.
    pub fn constraint_rows(&self) -> impl Iterator<Item = (&[(usize, f64)], Relation, f64)> + '_ {
        self.rows
            .iter()
            .map(|r| (r.coeffs.as_slice(), r.relation, r.rhs))
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Adds the constraint `Σ coeffs[k].1 · x_{coeffs[k].0}  relation  rhs`
    /// and returns its id. Repeated variable indices are summed.
    pub fn add_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> ConstraintId {
        let id = ConstraintId {
            index: self.rows.len(),
            program: self.token,
        };
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        id
    }

    fn validate(&self) -> Result<(), SimplexError> {
        for (i, &c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(SimplexError::InvalidModel(format!(
                    "objective coefficient of x{i} is {c}"
                )));
            }
        }
        for (r, row) in self.rows.iter().enumerate() {
            if !row.rhs.is_finite() {
                return Err(SimplexError::InvalidModel(format!(
                    "rhs of constraint {r} is {}",
                    row.rhs
                )));
            }
            for &(v, a) in &row.coeffs {
                if v >= self.num_vars {
                    return Err(SimplexError::InvalidModel(format!(
                        "constraint {r} references variable x{v} but the program has {} variables",
                        self.num_vars
                    )));
                }
                if !a.is_finite() {
                    return Err(SimplexError::InvalidModel(format!(
                        "constraint {r} has coefficient {a} on x{v}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solves the program with a fresh workspace.
    ///
    /// # Errors
    ///
    /// * [`SimplexError::Infeasible`] if no `x ≥ 0` satisfies the rows,
    /// * [`SimplexError::Unbounded`] if the objective is unbounded,
    /// * [`SimplexError::InvalidModel`] for NaN/infinite input or variable
    ///   indices out of range.
    pub fn solve(&self) -> Result<Solution, SimplexError> {
        self.solve_with(&mut SimplexWorkspace::new())
    }

    /// Solves the program cold, reusing `ws`'s allocations.
    ///
    /// The pivot sequence (and hence the solution) is identical to
    /// [`solve`](LinearProgram::solve); the only difference is that the
    /// tableau arena and all bookkeeping buffers are recycled, so repeated
    /// solves allocate nothing beyond the returned [`Solution`] once the
    /// workspace has grown to the largest problem size seen.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](LinearProgram::solve).
    pub fn solve_with(&self, ws: &mut SimplexWorkspace) -> Result<Solution, SimplexError> {
        self.validate()?;
        ws.warm_ready = false;
        ws.prepare(self);
        ws.cold_solve(self)
    }

    /// Re-solves the program, warm-starting from the optimal basis `ws`
    /// kept from its previous successful solve.
    ///
    /// The warm path applies when the constraint *structure* matches what
    /// the workspace last solved: same number of variables and rows, same
    /// relations, same rhs signs, and the same sparsity pattern. Objective
    /// coefficients, matrix coefficient values, and rhs magnitudes may all
    /// differ — that is the intended use: repeated solves of one model
    /// family (per-scenario MLU LPs, per-destination flow blocks) where
    /// only the numbers move. When the old basis cannot be reinstated
    /// (structure changed, basis numerically singular, or primal-infeasible
    /// for the new rhs) this falls back to a cold solve automatically.
    ///
    /// Unlike the cold path, a warm solve on a *degenerate* optimal face
    /// may return a different optimal vertex than [`solve`]
    /// (LinearProgram::solve); the objective value and dual certificates
    /// agree to numerical tolerance.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](LinearProgram::solve).
    pub fn resolve(&self, ws: &mut SimplexWorkspace) -> Result<Solution, SimplexError> {
        self.validate()?;
        ws.prepare(self);
        if ws.warm_ready && ws.saved_fingerprint == ws.fingerprint(self) {
            ws.warm_ready = false;
            if ws.try_restore_basis() {
                if ws.pruned_negative_cost {
                    return Err(SimplexError::Unbounded);
                }
                match ws.phase2() {
                    Ok(()) => {
                        let sol = ws.extract(self);
                        ws.save_basis(self);
                        return Ok(sol);
                    }
                    Err(SimplexError::Unbounded) => return Err(SimplexError::Unbounded),
                    // Numerical trouble on the warm path: rebuild and run
                    // the full two-phase solve instead.
                    Err(_) => {}
                }
            }
            // The failed restore attempt dirtied the arena.
            ws.prepare(self);
        } else {
            ws.warm_ready = false;
        }
        ws.cold_solve(self)
    }
}

/// Reusable scratch state of the flat-arena simplex engine.
///
/// Owns every allocation the solver needs: the row-major tableau arena, the
/// basis bookkeeping, the cached entering-column buffer, and the saved basis
/// used by [`LinearProgram::resolve`]. See the module docs for the layout.
///
/// A workspace may be reused freely across programs of different shapes;
/// buffers grow to the largest problem seen and are then recycled.
#[derive(Debug, Clone, Default)]
pub struct SimplexWorkspace {
    /// `(m + 1) × stride` row-major arena; entry `[i * stride + cols]` is
    /// row `i`'s rhs and row `m` is the reduced-cost (objective) row.
    t: Vec<f64>,
    stride: usize,
    m: usize,
    cols: usize,
    /// Basic column of each constraint row.
    basis: Vec<usize>,
    /// For each original row: (added column index, +1.0 for slack/artificial
    /// or −1.0 for surplus) used to read off the dual.
    dual_col: Vec<(usize, f64)>,
    /// Rows that turned out linearly dependent (dual = 0, never pivoted).
    row_active: Vec<bool>,
    /// First artificial column (all columns ≥ this are artificial).
    art_start: usize,
    /// Minimisation costs of the active structural columns.
    costs: Vec<f64>,
    /// Number of structural columns kept after zero-column pruning.
    n_active: usize,
    /// Variable → arena column (`usize::MAX` for pruned columns).
    col_of_var: Vec<usize>,
    /// Arena structural column → variable.
    var_of_col: Vec<usize>,
    /// Cached entering column: per-row factors of the current pivot.
    col_buf: Vec<f64>,
    /// Whether each variable has a nonzero coefficient anywhere.
    col_used: Vec<bool>,
    /// A pruned column has a negative minimisation cost (⇒ unbounded once
    /// feasibility is established).
    pruned_negative_cost: bool,
    /// Saved optimal basis for [`LinearProgram::resolve`].
    saved_basis: Vec<usize>,
    /// Scratch column permutation used while restoring the saved basis.
    restore_scratch: Vec<usize>,
    saved_fingerprint: u64,
    warm_ready: bool,
}

impl SimplexWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        SimplexWorkspace::default()
    }

    /// Builds the initial tableau for `lp` into the arena, recycling every
    /// buffer: zero-column pruning, rhs-sign normalisation, slack/surplus
    /// and artificial columns, and the initial basis.
    fn prepare(&mut self, lp: &LinearProgram) {
        let m = lp.rows.len();
        let n = lp.num_vars;
        self.m = m;

        // Pass 1: which structural columns carry any nonzero coefficient.
        // (A column whose entries cancel *exactly* within every row is kept:
        // it accumulates to all-zero in the arena and — like in the legacy
        // dense engine — can never be pivoted on, so keeping it only costs
        // one column of width.)
        self.col_used.clear();
        self.col_used.resize(n, false);
        for row in &lp.rows {
            for &(v, a) in &row.coeffs {
                if a != 0.0 {
                    self.col_used[v] = true;
                }
            }
        }

        // Column compaction: pruned columns get no arena slot.
        self.col_of_var.clear();
        self.col_of_var.resize(n, usize::MAX);
        self.var_of_col.clear();
        for v in 0..n {
            if self.col_used[v] {
                self.col_of_var[v] = self.var_of_col.len();
                self.var_of_col.push(v);
            }
        }
        let n_active = self.var_of_col.len();
        self.n_active = n_active;

        // Minimisation costs of the active columns; a pruned column with a
        // negative cost makes a feasible program unbounded (the variable
        // can grow without touching any constraint).
        self.costs.clear();
        match lp.sense {
            Sense::Minimize => self
                .costs
                .extend(self.var_of_col.iter().map(|&v| lp.objective[v])),
            Sense::Maximize => self
                .costs
                .extend(self.var_of_col.iter().map(|&v| -lp.objective[v])),
        }
        let sense_sign = if lp.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        self.pruned_negative_cost = (0..n)
            .filter(|&v| !self.col_used[v])
            .any(|v| sense_sign * lp.objective[v] < -EPS);

        let n_slack = lp
            .rows
            .iter()
            .filter(|r| matches!(r.relation, Relation::Le | Relation::Ge))
            .count();
        let n_art = lp
            .rows
            .iter()
            .filter(|r| matches!(r.normalized_relation(), Relation::Ge | Relation::Eq))
            .count();
        let cols = n_active + n_slack + n_art;
        self.cols = cols;
        self.art_start = n_active + n_slack;
        self.stride = cols + 1;

        self.t.clear();
        self.t.resize((m + 1) * self.stride, 0.0);
        self.basis.clear();
        self.basis.resize(m, usize::MAX);
        self.dual_col.clear();
        self.dual_col.resize(m, (usize::MAX, 1.0));
        self.row_active.clear();
        self.row_active.resize(m, true);
        self.col_buf.clear();
        self.col_buf.resize(m + 1, 0.0);

        for (i, row) in lp.rows.iter().enumerate() {
            let flip = row.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            let base = i * self.stride;
            for &(v, a) in &row.coeffs {
                let c = self.col_of_var[v];
                if c != usize::MAX {
                    self.t[base + c] += sign * a;
                }
            }
            self.t[base + cols] = if flip { -row.rhs } else { row.rhs };
        }

        let mut next_slack = n_active;
        let mut next_art = self.art_start;
        for (i, row) in lp.rows.iter().enumerate() {
            let base = i * self.stride;
            match row.normalized_relation() {
                Relation::Le => {
                    self.t[base + next_slack] = 1.0;
                    self.basis[i] = next_slack;
                    self.dual_col[i] = (next_slack, 1.0);
                    next_slack += 1;
                }
                Relation::Ge => {
                    self.t[base + next_slack] = -1.0;
                    self.dual_col[i] = (next_art, 1.0);
                    next_slack += 1;
                    self.t[base + next_art] = 1.0;
                    self.basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    self.t[base + next_art] = 1.0;
                    self.basis[i] = next_art;
                    self.dual_col[i] = (next_art, 1.0);
                    next_art += 1;
                }
            }
        }
    }

    /// The full two-phase solve over a prepared arena.
    fn cold_solve(&mut self, lp: &LinearProgram) -> Result<Solution, SimplexError> {
        self.phase1()?;
        if self.pruned_negative_cost {
            return Err(SimplexError::Unbounded);
        }
        self.phase2()?;
        let sol = self.extract(lp);
        self.save_basis(lp);
        Ok(sol)
    }

    /// Structural fingerprint of `lp` under the current column mapping;
    /// [`LinearProgram::resolve`] warm-starts only on a match. Hashes the
    /// row relations, rhs signs and the pruned-column mapping — everything
    /// that determines the tableau's *column layout* — in O(n + m). It
    /// deliberately excludes coefficient values and per-row sparsity: a
    /// layout match guarantees the saved basis names only structural/slack
    /// columns of the new tableau (never artificials), and the numeric
    /// restore checks (nonsingularity, rhs feasibility) catch any deeper
    /// mismatch by falling back to a cold solve. A stale warm start can
    /// therefore cost time, never correctness.
    fn fingerprint(&self, lp: &LinearProgram) -> u64 {
        // FNV-1a.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        eat(lp.num_vars as u64);
        eat(lp.rows.len() as u64);
        for row in &lp.rows {
            eat(match row.relation {
                Relation::Le => 1,
                Relation::Eq => 2,
                Relation::Ge => 3,
            });
            eat(u64::from(row.rhs < 0.0));
        }
        for &v in &self.var_of_col {
            eat(v as u64);
        }
        h
    }

    /// Records the final basis for future warm starts. Only clean optima
    /// qualify: every row active and no artificial column left basic.
    fn save_basis(&mut self, lp: &LinearProgram) {
        self.warm_ready =
            self.row_active.iter().all(|&a| a) && self.basis.iter().all(|&b| b < self.art_start);
        if self.warm_ready {
            self.saved_basis.clear();
            self.saved_basis.extend_from_slice(&self.basis);
            self.saved_fingerprint = self.fingerprint(lp);
        }
    }

    /// Reinstates the saved basis on a freshly prepared arena by Gaussian
    /// elimination: each row pivots on the remaining saved column with the
    /// largest magnitude (column partial pivoting cannot break down on a
    /// nonsingular basis matrix). Returns `false` — leaving the arena dirty,
    /// the caller re-prepares — when the basis is numerically singular or
    /// not primal-feasible for the new rhs.
    fn try_restore_basis(&mut self) -> bool {
        if self.saved_basis.len() != self.m {
            return false;
        }
        self.restore_scratch.clear();
        self.restore_scratch.extend_from_slice(&self.saved_basis);
        let stride = self.stride;
        for i in 0..self.m {
            let base = i * stride;
            let mut best = usize::MAX;
            let mut best_mag = PIVOT_EPS;
            for (k, &c) in self.restore_scratch[i..].iter().enumerate() {
                let mag = self.t[base + c].abs();
                if mag > best_mag {
                    best_mag = mag;
                    best = i + k;
                }
            }
            if best == usize::MAX {
                return false;
            }
            self.restore_scratch.swap(i, best);
            let c = self.restore_scratch[i];
            self.pivot(i, c);
        }
        // The restored basis must be primal-feasible for the new rhs; tiny
        // negative values are degenerate noise and clamp to the invariant
        // rhs ≥ 0 the ratio test relies on.
        for i in 0..self.m {
            let rhs = self.t[i * stride + self.cols];
            if rhs < -PIVOT_EPS {
                return false;
            }
            if rhs < 0.0 {
                self.t[i * stride + self.cols] = 0.0;
            }
        }
        true
    }

    /// Phase 1: minimise the sum of artificial variables.
    fn phase1(&mut self) -> Result<(), SimplexError> {
        if self.art_start == self.cols {
            return Ok(()); // no artificials needed
        }
        // Objective row: sum of artificial rows, negated into reduced costs.
        // cost of artificial = 1, others 0. Reduced cost row r_j = c_j - sum
        // of rows where the basic variable is artificial.
        let stride = self.stride;
        let obj_base = self.m * stride;
        for j in 0..stride {
            self.t[obj_base + j] = 0.0;
        }
        for j in self.art_start..self.cols {
            self.t[obj_base + j] = 1.0;
        }
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                let (rows, obj) = self.t.split_at_mut(obj_base);
                let src = &rows[i * stride..(i + 1) * stride];
                for (dst, s) in obj.iter_mut().zip(src) {
                    *dst -= *s;
                }
            }
        }
        self.iterate(self.cols)?;
        let infeas = -self.t[obj_base + self.cols];
        if infeas > 1e-7 {
            return Err(SimplexError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis.
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                let base = i * stride;
                let pivot_col = (0..self.art_start).find(|&j| self.t[base + j].abs() > PIVOT_EPS);
                match pivot_col {
                    Some(j) => self.pivot(i, j),
                    None => {
                        // Redundant row: all-zero over structural+slack.
                        self.row_active[i] = false;
                    }
                }
            }
        }
        Ok(())
    }

    /// Phase 2: minimise the true costs, artificial columns barred.
    fn phase2(&mut self) -> Result<(), SimplexError> {
        let stride = self.stride;
        let obj_base = self.m * stride;
        for j in 0..stride {
            self.t[obj_base + j] = 0.0;
        }
        for (j, &c) in self.costs.iter().enumerate() {
            self.t[obj_base + j] = c;
        }
        // Zero out reduced costs of basic columns.
        for i in 0..self.m {
            if !self.row_active[i] {
                continue;
            }
            let b = self.basis[i];
            let cb = if b < self.n_active {
                self.costs[b]
            } else {
                0.0
            };
            if cb != 0.0 {
                let (rows, obj) = self.t.split_at_mut(obj_base);
                let src = &rows[i * stride..(i + 1) * stride];
                for (dst, s) in obj.iter_mut().zip(src) {
                    *dst -= cb * *s;
                }
            }
        }
        self.iterate(self.art_start)
    }

    /// Runs simplex iterations over columns `0..allowed_cols`.
    fn iterate(&mut self, allowed_cols: usize) -> Result<(), SimplexError> {
        let stride = self.stride;
        let obj_base = self.m * stride;
        // Dantzig's rule, with Bland's rule after a stall threshold to
        // guarantee termination under degeneracy.
        let bland_after = 50 * (self.m + self.cols) + 1000;
        let hard_cap = 400 * (self.m + self.cols) + 20_000;
        for iter in 0..hard_cap {
            let bland = iter >= bland_after;
            let obj = &self.t[obj_base..obj_base + allowed_cols];
            let entering = if bland {
                obj.iter().position(|&r| r < -EPS)
            } else {
                let mut best = None;
                let mut best_val = -EPS;
                for (j, &r) in obj.iter().enumerate() {
                    if r < best_val {
                        best_val = r;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(j) = entering else {
                return Ok(()); // optimal
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                if !self.row_active[i] {
                    continue;
                }
                let base = i * stride;
                let a = self.t[base + j];
                if a > PIVOT_EPS {
                    let ratio = self.t[base + self.cols] / a;
                    let better = match leave {
                        None => true,
                        Some(li) => {
                            ratio < best_ratio - EPS
                                || (bland
                                    && (ratio - best_ratio).abs() <= EPS
                                    && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(i) = leave else {
                return Err(SimplexError::Unbounded);
            };
            self.pivot(i, j);
        }
        // The Bland fallback makes cycling impossible; running into the cap
        // indicates a numerical pathology, which we surface as a model error.
        Err(SimplexError::InvalidModel(
            "simplex iteration cap exceeded (numerically ill-conditioned input)".to_string(),
        ))
    }

    /// Allocation-free pivot: caches the entering column, scales the pivot
    /// row in place, and eliminates it from every other row (including the
    /// objective row) through a `split_at_mut` borrow.
    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let stride = self.stride;
        let piv = self.t[pivot_row * stride + pivot_col];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        let inv = 1.0 / piv;
        // Cache the entering column once: the factors survive the in-place
        // row updates and the strided reads happen in a single pass, keeping
        // the elimination loops purely sequential.
        for i in 0..=self.m {
            self.col_buf[i] = self.t[i * stride + pivot_col];
        }
        let (head, rest) = self.t.split_at_mut(pivot_row * stride);
        let (prow, tail) = rest.split_at_mut(stride);
        for x in prow.iter_mut() {
            *x *= inv;
        }
        prow[pivot_col] = 1.0;
        for (i, row) in head.chunks_exact_mut(stride).enumerate() {
            let factor = self.col_buf[i];
            if factor.abs() > 0.0 {
                for (dst, src) in row.iter_mut().zip(prow.iter()) {
                    *dst -= factor * *src;
                }
                row[pivot_col] = 0.0;
            }
        }
        for (k, row) in tail.chunks_exact_mut(stride).enumerate() {
            let factor = self.col_buf[pivot_row + 1 + k];
            if factor.abs() > 0.0 {
                for (dst, src) in row.iter_mut().zip(prow.iter()) {
                    *dst -= factor * *src;
                }
                row[pivot_col] = 0.0;
            }
        }
        self.basis[pivot_row] = pivot_col;
    }

    fn extract(&self, lp: &LinearProgram) -> Solution {
        let stride = self.stride;
        let mut x = vec![0.0; lp.num_vars];
        for i in 0..self.m {
            if self.row_active[i] && self.basis[i] < self.n_active {
                x[self.var_of_col[self.basis[i]]] = self.t[i * stride + self.cols];
            }
        }
        let mut objective: f64 = x.iter().zip(&lp.objective).map(|(xi, ci)| xi * ci).sum();
        // Duals from the reduced costs of the per-row added columns:
        // r_added = c_added − y_i · coeff = −y_i · coeff (added costs are 0).
        let obj_base = self.m * stride;
        let mut duals = vec![0.0; self.m];
        for (i, dual) in duals.iter_mut().enumerate() {
            if !self.row_active[i] {
                continue;
            }
            let (col, coeff) = self.dual_col[i];
            let mut y = -self.t[obj_base + col] / coeff;
            // Rows whose rhs was negated have flipped duals.
            if lp.rows[i].rhs < 0.0 {
                y = -y;
            }
            *dual = y;
        }
        if lp.sense == Sense::Maximize {
            for y in &mut duals {
                *y = -*y;
            }
        }
        // Clean tiny numerical noise.
        for v in x.iter_mut().chain(duals.iter_mut()) {
            if v.abs() < 1e-11 {
                *v = 0.0;
            }
        }
        if objective.abs() < 1e-11 {
            objective = 0.0;
        }
        Solution {
            objective,
            x,
            duals,
            program: lp.token,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_max_le() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2, 6).
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 5.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        let c2 = lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        let c3 = lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value(0), 2.0);
        assert_close(sol.value(1), 6.0);
        // Shadow prices (max convention, y >= 0): 0, 1.5, 1.
        assert_close(sol.dual(c2), 1.5);
        assert_close(sol.dual(c3), 1.0);
    }

    #[test]
    fn min_with_ge_rows_two_phase() {
        // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 -> optimum 9 at (3, 1).
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        let c1 = lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
        let c2 = lp.add_constraint(&[(0, 1.0), (1, 3.0)], Relation::Ge, 6.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 9.0);
        assert_close(sol.value(0), 3.0);
        assert_close(sol.value(1), 1.0);
        // Strong duality: b'y = 4*y1 + 6*y2 = 9 with y = (1.5, 0.5).
        assert_close(sol.dual(c1), 1.5);
        assert_close(sol.dual(c2), 0.5);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(0), 2.0);
        assert_close(sol.value(1), 1.0);
        assert_close(sol.objective(), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), Err(SimplexError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve(), Err(SimplexError::Unbounded));
    }

    #[test]
    fn negative_rhs_normalised() {
        // x >= 2 expressed as -x <= -2.
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, 1.0);
        let c = lp.add_constraint(&[(0, -1.0)], Relation::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(0), 2.0);
        // Same marginal as `x >= 2`, whose dual in the min convention is +1,
        // seen through the negated row: -x <= -2 has y <= 0 and
        // c - A'y = 1 - (-1)(y) => y = -1.
        assert_close(sol.dual(c), -1.0);
    }

    #[test]
    fn redundant_rows_get_zero_dual() {
        // Same constraint twice.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 2.0);
        // One of the two identical rows carries the dual, the other is
        // redundant; their sum must equal the marginal cost 1.
        assert_close(sol.duals()[0] + sol.duals()[1], 1.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example (Beale's cycling LP without Bland
        // safeguards). The solver must terminate and find -0.05.
        let mut lp = LinearProgram::minimize(4);
        for (i, c) in [-0.75, 150.0, -0.02, 6.0].iter().enumerate() {
            lp.set_objective(i, *c);
        }
        lp.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), -0.05);
    }

    #[test]
    fn free_of_constraints_zero_or_unbounded() {
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 0.0);

        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        assert_eq!(lp.solve(), Err(SimplexError::Unbounded));
    }

    #[test]
    fn complementary_slackness_holds() {
        let mut lp = LinearProgram::maximize(3);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, 4.0);
        lp.set_objective(2, 3.0);
        let rows = [
            lp.add_constraint(&[(0, 2.0), (1, 3.0), (2, 1.0)], Relation::Le, 5.0),
            lp.add_constraint(&[(0, 4.0), (1, 1.0), (2, 2.0)], Relation::Le, 11.0),
            lp.add_constraint(&[(0, 3.0), (1, 4.0), (2, 2.0)], Relation::Le, 8.0),
        ];
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 13.0);
        // Strong duality.
        let dual_obj: f64 = [5.0, 11.0, 8.0]
            .iter()
            .zip(rows.iter())
            .map(|(b, &c)| b * sol.dual(c))
            .sum();
        assert_close(dual_obj, 13.0);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, f64::NAN);
        assert!(matches!(lp.solve(), Err(SimplexError::InvalidModel(_))));

        let mut lp = LinearProgram::minimize(1);
        lp.add_constraint(&[(5, 1.0)], Relation::Le, 1.0);
        assert!(matches!(lp.solve(), Err(SimplexError::InvalidModel(_))));
    }

    #[test]
    fn min_cost_routing_shape() {
        // Tiny routing LP: one unit from s to t over two parallel "paths"
        // with costs 1 and 3, the cheap one capped at 0.4.
        // Variables: x0 = cheap path, x1 = expensive path.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        let cap = lp.add_constraint(&[(0, 1.0)], Relation::Le, 0.4);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(0), 0.4);
        assert_close(sol.value(1), 0.6);
        assert_close(sol.objective(), 0.4 + 1.8);
        // Capacity shadow price: relaxing the cap by 1 saves cost 2
        // (min convention: y <= 0).
        assert_close(sol.dual(cap), -2.0);
    }

    #[test]
    fn workspace_reuse_is_equivalent_across_shapes() {
        // One workspace solves programs of different shapes back to back;
        // each result must match a fresh-workspace solve exactly.
        let mut ws = SimplexWorkspace::new();

        let mut a = LinearProgram::maximize(2);
        a.set_objective(0, 3.0);
        a.set_objective(1, 5.0);
        a.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        a.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        a.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);

        let mut b = LinearProgram::minimize(3);
        b.set_objective(0, 2.0);
        b.set_objective(1, 3.0);
        b.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Ge, 4.0);
        b.add_constraint(&[(0, 1.0), (1, 3.0)], Relation::Eq, 6.0);

        for lp in [&a, &b, &a, &b] {
            let shared = lp.solve_with(&mut ws).unwrap();
            let fresh = lp.solve().unwrap();
            assert_eq!(shared, fresh);
        }
    }

    #[test]
    fn zero_columns_are_pruned_not_mispriced() {
        // x1 and x3 never appear in a constraint (pruned); x2 has entries
        // that cancel exactly within one row (kept as an all-zero column
        // that can never be pivoted on). All must come back 0 with the
        // constrained optimum unchanged.
        let mut lp = LinearProgram::minimize(4);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 2.0);
        lp.set_objective(2, 0.5);
        lp.set_objective(3, 0.0);
        let c = lp.add_constraint(&[(0, 1.0), (2, 1.0), (2, -1.0)], Relation::Ge, 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective(), 3.0);
        assert_close(sol.value(0), 3.0);
        assert_close(sol.value(1), 0.0);
        assert_close(sol.value(2), 0.0);
        assert_close(sol.value(3), 0.0);
        assert_close(sol.dual(c), 1.0);
    }

    #[test]
    fn pruned_negative_cost_is_unbounded_only_when_feasible() {
        // A free negative-cost variable makes a feasible min unbounded...
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve(), Err(SimplexError::Unbounded));

        // ...but infeasibility still takes precedence.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(1, -1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), Err(SimplexError::Infeasible));
    }

    #[test]
    fn resolve_warm_start_tracks_rhs_changes() {
        // Solve a transportation-shaped LP, then sweep the rhs; resolve()
        // must agree with a cold solve at every step.
        let build = |supply: f64, cap: f64| {
            let mut lp = LinearProgram::minimize(2);
            lp.set_objective(0, 1.0);
            lp.set_objective(1, 3.0);
            lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, supply);
            lp.add_constraint(&[(0, 1.0)], Relation::Le, cap);
            lp
        };
        let mut ws = SimplexWorkspace::new();
        build(1.0, 0.4).resolve(&mut ws).unwrap();
        for (supply, cap) in [(2.0, 0.4), (1.5, 1.0), (0.3, 0.4), (1.0, 0.0)] {
            let lp = build(supply, cap);
            let warm = lp.resolve(&mut ws).unwrap();
            let cold = lp.solve().unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs() < 1e-9,
                "objective diverged at ({supply}, {cap}): {} vs {}",
                warm.objective(),
                cold.objective()
            );
            for v in 0..2 {
                assert!((warm.value(v) - cold.value(v)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn resolve_falls_back_on_structure_change() {
        let mut a = LinearProgram::minimize(2);
        a.set_objective(0, 1.0);
        a.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 2.0);
        let mut ws = SimplexWorkspace::new();
        a.resolve(&mut ws).unwrap();

        // Different row structure: must cold-solve, not reuse the basis.
        let mut b = LinearProgram::minimize(2);
        b.set_objective(0, 2.0);
        b.set_objective(1, 1.0);
        b.add_constraint(&[(0, 1.0)], Relation::Le, 5.0);
        b.add_constraint(&[(1, 1.0)], Relation::Ge, 3.0);
        let warm = b.resolve(&mut ws).unwrap();
        assert_eq!(warm, b.solve().unwrap());
    }

    #[test]
    fn resolve_reports_infeasible_and_recovers() {
        let build = |rhs: f64| {
            let mut lp = LinearProgram::minimize(1);
            lp.set_objective(0, 1.0);
            lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
            lp.add_constraint(&[(0, 1.0)], Relation::Ge, rhs);
            lp
        };
        let mut ws = SimplexWorkspace::new();
        build(0.5).resolve(&mut ws).unwrap();
        assert_eq!(build(2.0).resolve(&mut ws), Err(SimplexError::Infeasible));
        // And a feasible follow-up still solves.
        let sol = build(0.25).resolve(&mut ws).unwrap();
        assert_close(sol.objective(), 0.25);
    }

    #[test]
    #[should_panic(expected = "different LinearProgram")]
    fn foreign_constraint_id_panics() {
        let mut small = LinearProgram::minimize(1);
        small.set_objective(0, 1.0);
        let foreign = small.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);

        let mut big = LinearProgram::minimize(2);
        big.set_objective(0, 1.0);
        big.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        big.add_constraint(&[(1, 1.0)], Relation::Ge, 1.0);
        let sol = big.solve().unwrap();
        // `foreign.index` is in range for `big`, so without the program tag
        // this would silently return `big`'s first dual.
        let _ = sol.dual(foreign);
    }

    #[test]
    fn clones_share_program_identity() {
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, 1.0);
        let c = lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        let clone = lp.clone();
        let sol = clone.solve().unwrap();
        assert_close(sol.dual(c), 1.0);
    }
}
