//! Min-cost network flow by successive shortest paths with Johnson
//! potentials.
//!
//! The `Route_t(w; d_t)` subproblem of Algorithm 1 is a min-cost flow
//! problem (Remark 1 of the paper reduces the whole `Network(G,c,D;w)`
//! problem to one). This combinatorial solver provides an exact reference
//! that is much faster than the simplex on network matrices, and the two are
//! cross-validated against each other in the test-suite.

use std::fmt;

use spef_graph::{bellman_ford, EdgeId, Graph, NodeId};

/// Errors returned by [`MinCostFlow::solve`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MinCostFlowError {
    /// Supplies do not sum to zero.
    UnbalancedSupply {
        /// The (nonzero) total supply.
        total: f64,
    },
    /// The demands cannot be routed within the capacities.
    Infeasible,
    /// A capacity was negative/NaN, or a cost NaN/infinite.
    InvalidInput(String),
}

impl fmt::Display for MinCostFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinCostFlowError::UnbalancedSupply { total } => {
                write!(f, "supplies sum to {total}, expected 0")
            }
            MinCostFlowError::Infeasible => write!(f, "flow demands exceed network capacity"),
            MinCostFlowError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for MinCostFlowError {}

/// A min-cost flow instance over a [`Graph`].
///
/// Capacities may be `f64::INFINITY` (uncapacitated links — the form used by
/// `Route_t`). Costs must be non-negative (link weights always are).
///
/// # Example
///
/// Route 2 units from node 0 to node 2 over a cheap capped link and an
/// expensive parallel path:
///
/// ```
/// use spef_graph::Graph;
/// use spef_lp::MinCostFlow;
///
/// # fn main() -> Result<(), spef_lp::MinCostFlowError> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(0.into(), 2.into()); // direct, cheap, capacity 1
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// let mcf = MinCostFlow::new(&g, &[1.0, 1.0, 1.0], &[1.0, 2.0, 2.0]);
/// let mut supply = vec![0.0; 3];
/// supply[0] = 2.0;
/// supply[2] = -2.0;
/// let sol = mcf.solve(&supply)?;
/// assert!((sol.cost() - (1.0 + 4.0)).abs() < 1e-9);
/// assert!((sol.flow(0.into()) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow<'g> {
    graph: &'g Graph,
    capacities: Vec<f64>,
    costs: Vec<f64>,
}

/// Result of a min-cost flow computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSolution {
    flows: Vec<f64>,
    cost: f64,
    potentials: Vec<f64>,
}

impl FlowSolution {
    /// Flow on edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn flow(&self, e: EdgeId) -> f64 {
        self.flows[e.index()]
    }

    /// All edge flows indexed by edge id.
    pub fn flows(&self) -> &[f64] {
        &self.flows
    }

    /// Total cost `Σ cost_e · flow_e`.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Final node potentials (LP duals of the conservation constraints up to
    /// a per-component additive constant).
    pub fn potentials(&self) -> &[f64] {
        &self.potentials
    }
}

const EPS: f64 = 1e-9;

impl<'g> MinCostFlow<'g> {
    /// Creates an instance over `graph` with per-edge `capacities` and
    /// `costs`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match `graph.edge_count()`.
    pub fn new(graph: &'g Graph, capacities: &[f64], costs: &[f64]) -> Self {
        assert_eq!(capacities.len(), graph.edge_count(), "capacities length");
        assert_eq!(costs.len(), graph.edge_count(), "costs length");
        MinCostFlow {
            graph,
            capacities: capacities.to_vec(),
            costs: costs.to_vec(),
        }
    }

    /// Solves for the min-cost flow realising `supply` (positive = source,
    /// negative = sink; must sum to zero).
    ///
    /// # Errors
    ///
    /// * [`MinCostFlowError::UnbalancedSupply`] if `supply` does not sum to 0,
    /// * [`MinCostFlowError::Infeasible`] if capacities cannot carry it,
    /// * [`MinCostFlowError::InvalidInput`] for negative/NaN capacities,
    ///   negative/NaN costs, or a supply vector of the wrong length.
    pub fn solve(&self, supply: &[f64]) -> Result<FlowSolution, MinCostFlowError> {
        let n = self.graph.node_count();
        if supply.len() != n {
            return Err(MinCostFlowError::InvalidInput(format!(
                "supply has length {}, graph has {n} nodes",
                supply.len()
            )));
        }
        for (i, &c) in self.capacities.iter().enumerate() {
            if c.is_nan() || c < 0.0 {
                return Err(MinCostFlowError::InvalidInput(format!(
                    "capacity of edge e{i} is {c}"
                )));
            }
        }
        for (i, &c) in self.costs.iter().enumerate() {
            if !c.is_finite() || c < 0.0 {
                return Err(MinCostFlowError::InvalidInput(format!(
                    "cost of edge e{i} is {c}"
                )));
            }
        }
        let total: f64 = supply.iter().sum();
        if total.abs() > 1e-6 {
            return Err(MinCostFlowError::UnbalancedSupply { total });
        }

        // Residual network: forward arc 2e, backward arc 2e+1.
        let e_count = self.graph.edge_count();
        let mut resid = vec![0.0; 2 * e_count];
        for e in 0..e_count {
            resid[2 * e] = self.capacities[e];
        }

        // Potentials: costs are non-negative, so zero potentials are valid.
        let mut pi = vec![0.0; n];
        let _ = bellman_ford::distances_from; // (kept for general-cost variants)

        let mut remaining: Vec<f64> = supply.to_vec();
        // Dijkstra scratch, hoisted out of the augmentation loop so each
        // shortest-path computation reuses the same buffers.
        let mut scratch = DijkstraScratch::new(n);
        // Pick any node with positive remaining supply until none is left.
        while let Some(src) = (0..n).find(|&i| remaining[i] > EPS) {
            // Dijkstra over the residual graph with reduced costs.
            self.residual_dijkstra(src, &resid, &pi, &mut scratch);
            let DijkstraScratch { dist, parent, .. } = &scratch;
            // Find the nearest reachable node with deficit.
            let sink = (0..n)
                .filter(|&i| remaining[i] < -EPS && dist[i].is_finite())
                .min_by(|&a, &b| dist[a].total_cmp(&dist[b]));
            let Some(sink) = sink else {
                return Err(MinCostFlowError::Infeasible);
            };
            // Bottleneck along the path.
            let mut bottleneck = remaining[src].min(-remaining[sink]);
            let mut v = sink;
            while v != src {
                let arc = parent[v].expect("path arc");
                bottleneck = bottleneck.min(resid[arc]);
                v = self.arc_tail(arc);
            }
            // Augment.
            let mut v = sink;
            while v != src {
                let arc = parent[v].expect("path arc");
                resid[arc] -= bottleneck;
                resid[arc ^ 1] += bottleneck;
                v = self.arc_tail(arc);
            }
            remaining[src] -= bottleneck;
            remaining[sink] += bottleneck;
            // Update potentials (Johnson): keeps reduced costs non-negative.
            for i in 0..n {
                if dist[i].is_finite() {
                    pi[i] += dist[i];
                }
            }
        }

        let mut flows = vec![0.0; e_count];
        let mut cost = 0.0;
        for e in 0..e_count {
            let f = resid[2 * e + 1]; // backward residual == flow pushed
            flows[e] = f;
            cost += f * self.costs[e];
        }
        Ok(FlowSolution {
            flows,
            cost,
            potentials: pi,
        })
    }

    fn arc_tail(&self, arc: usize) -> usize {
        let e = EdgeId::new(arc / 2);
        if arc.is_multiple_of(2) {
            self.graph.source(e).index()
        } else {
            self.graph.target(e).index()
        }
    }

    fn arc_head(&self, arc: usize) -> usize {
        let e = EdgeId::new(arc / 2);
        if arc.is_multiple_of(2) {
            self.graph.target(e).index()
        } else {
            self.graph.source(e).index()
        }
    }

    fn arc_cost(&self, arc: usize) -> f64 {
        let c = self.costs[arc / 2];
        if arc.is_multiple_of(2) {
            c
        } else {
            -c
        }
    }

    /// Dijkstra on the residual graph with reduced costs
    /// `c(u,v) + π(u) − π(v) ≥ 0`. Fills `scratch` with distances and the
    /// incoming arc of each node on the shortest path tree.
    fn residual_dijkstra(
        &self,
        src: usize,
        resid: &[f64],
        pi: &[f64],
        scratch: &mut DijkstraScratch,
    ) {
        use std::cmp::Reverse;

        let DijkstraScratch {
            dist,
            parent,
            done,
            heap,
        } = scratch;
        dist.fill(f64::INFINITY);
        parent.fill(None);
        done.fill(false);
        heap.clear();
        dist[src] = 0.0;
        heap.push((Reverse(OrdF64(0.0)), src));
        while let Some((Reverse(OrdF64(d)), u)) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            // Arcs leaving u: forward arcs of out-edges, backward arcs of
            // in-edges.
            let u_node = NodeId::new(u);
            let fw = self.graph.out_edges(u_node).iter().map(|&e| 2 * e.index());
            let bw = self
                .graph
                .in_edges(u_node)
                .iter()
                .map(|&e| 2 * e.index() + 1);
            for arc in fw.chain(bw) {
                if resid[arc] <= EPS {
                    continue;
                }
                let v = self.arc_head(arc);
                let rc = self.arc_cost(arc) + pi[u] - pi[v];
                // Clamp tiny negatives from floating-point drift.
                let rc = rc.max(0.0);
                let nd = d + rc;
                if nd < dist[v] - EPS {
                    dist[v] = nd;
                    parent[v] = Some(arc);
                    heap.push((Reverse(OrdF64(nd)), v));
                }
            }
        }
    }
}

/// Reusable buffers for [`MinCostFlow::solve`]'s repeated Dijkstra runs.
struct DijkstraScratch {
    dist: Vec<f64>,
    parent: Vec<Option<usize>>,
    done: Vec<bool>,
    heap: std::collections::BinaryHeap<(std::cmp::Reverse<OrdF64>, usize)>,
}

impl DijkstraScratch {
    fn new(n: usize) -> Self {
        DijkstraScratch {
            dist: vec![f64::INFINITY; n],
            parent: vec![None; n],
            done: vec![false; n],
            heap: std::collections::BinaryHeap::new(),
        }
    }
}

/// Total-order wrapper for f64 heap keys (all values finite here).
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two paths from 0 to 3: cheap (cost 1+1) capacity 1, expensive
    /// (cost 2+2) capacity 10.
    fn two_path_net() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into()); // e0 cheap hop 1
        g.add_edge(1.into(), 3.into()); // e1 cheap hop 2
        g.add_edge(0.into(), 2.into()); // e2 expensive hop 1
        g.add_edge(2.into(), 3.into()); // e3 expensive hop 2
        g
    }

    #[test]
    fn splits_when_cheap_path_saturates() {
        let g = two_path_net();
        let mcf = MinCostFlow::new(&g, &[1.0, 1.0, 10.0, 10.0], &[1.0, 1.0, 2.0, 2.0]);
        let mut s = vec![0.0; 4];
        s[0] = 3.0;
        s[3] = -3.0;
        let sol = mcf.solve(&s).unwrap();
        assert!((sol.flow(EdgeId::new(0)) - 1.0).abs() < 1e-9);
        assert!((sol.flow(EdgeId::new(2)) - 2.0).abs() < 1e-9);
        assert!((sol.cost() - (2.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn uncapacitated_routes_all_on_shortest_path() {
        let g = two_path_net();
        let inf = f64::INFINITY;
        let mcf = MinCostFlow::new(&g, &[inf; 4], &[1.0, 1.0, 2.0, 2.0]);
        let mut s = vec![0.0; 4];
        s[0] = 7.0;
        s[3] = -7.0;
        let sol = mcf.solve(&s).unwrap();
        assert!((sol.flow(EdgeId::new(0)) - 7.0).abs() < 1e-9);
        assert_eq!(sol.flow(EdgeId::new(2)), 0.0);
        assert!((sol.cost() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_sources_and_sinks() {
        // 0 and 1 supply, 2 and 3 demand, complete-ish network.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 2.into()); // cost 1
        g.add_edge(0.into(), 3.into()); // cost 5
        g.add_edge(1.into(), 2.into()); // cost 4
        g.add_edge(1.into(), 3.into()); // cost 1
        let mcf = MinCostFlow::new(&g, &[10.0; 4], &[1.0, 5.0, 4.0, 1.0]);
        let sol = mcf.solve(&[2.0, 2.0, -2.0, -2.0]).unwrap();
        // Obvious matching: 0->2, 1->3.
        assert!((sol.cost() - 4.0).abs() < 1e-9);
        assert!((sol.flow(EdgeId::new(0)) - 2.0).abs() < 1e-9);
        assert!((sol.flow(EdgeId::new(3)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_capacity_insufficient() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        let mcf = MinCostFlow::new(&g, &[1.0], &[1.0]);
        assert_eq!(mcf.solve(&[2.0, -2.0]), Err(MinCostFlowError::Infeasible));
    }

    #[test]
    fn unbalanced_supply_rejected() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        let mcf = MinCostFlow::new(&g, &[1.0], &[1.0]);
        assert!(matches!(
            mcf.solve(&[1.0, 0.0]),
            Err(MinCostFlowError::UnbalancedSupply { .. })
        ));
    }

    #[test]
    fn zero_supply_gives_zero_flow() {
        let g = two_path_net();
        let mcf = MinCostFlow::new(&g, &[1.0; 4], &[1.0; 4]);
        let sol = mcf.solve(&[0.0; 4]).unwrap();
        assert_eq!(sol.cost(), 0.0);
        assert!(sol.flows().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn rerouting_uses_backward_arcs() {
        // Classic instance where the greedy first path must be partially
        // undone: 0->1 (cap 1, cost 1), 0->2 (cap 1, cost 2), 1->2 (cap 1,
        // cost 0), 1->3 (cap 1, cost 2), 2->3 (cap 1, cost 1).
        // Send 2 units 0 -> 3; optimum = 0-1-2-3 (cost 2) + 0-2? no:
        // paths 0-1-3 (3) and 0-2-3 (3) total 6; vs 0-1-2-3 (2) + 0-2-3
        // blocked (cap on 2->3). Optimum: 0-1-2-3 and 0-2... 2->3 cap 1.
        // Feasible pairs: {0-1-3, 0-2-3} = 6 or {0-1-2-3, ...} second unit
        // must use 0-2 then 2->3 is full -> infeasible; so optimum is 6.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let mcf = MinCostFlow::new(&g, &[1.0, 1.0, 1.0, 1.0, 1.0], &[1.0, 2.0, 0.0, 2.0, 1.0]);
        let sol = mcf.solve(&[2.0, 0.0, 0.0, -2.0]).unwrap();
        assert!((sol.cost() - 6.0).abs() < 1e-9, "cost = {}", sol.cost());
    }

    #[test]
    fn conservation_holds() {
        let g = two_path_net();
        let mcf = MinCostFlow::new(&g, &[2.0; 4], &[1.0, 1.0, 2.0, 2.0]);
        let sol = mcf.solve(&[3.0, 0.0, 0.0, -3.0]).unwrap();
        let div = g.divergence(sol.flows());
        assert!((div[0] - 3.0).abs() < 1e-9);
        assert!((div[3] + 3.0).abs() < 1e-9);
        assert!(div[1].abs() < 1e-9);
        assert!(div[2].abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        let mcf = MinCostFlow::new(&g, &[-1.0], &[1.0]);
        assert!(matches!(
            mcf.solve(&[0.0, 0.0]),
            Err(MinCostFlowError::InvalidInput(_))
        ));
        let mcf = MinCostFlow::new(&g, &[1.0], &[-1.0]);
        assert!(matches!(
            mcf.solve(&[0.0, 0.0]),
            Err(MinCostFlowError::InvalidInput(_))
        ));
        let mcf = MinCostFlow::new(&g, &[1.0], &[1.0]);
        assert!(matches!(
            mcf.solve(&[0.0]),
            Err(MinCostFlowError::InvalidInput(_))
        ));
    }
}
