//! Linear-programming substrate for the SPEF traffic-engineering
//! reproduction.
//!
//! The paper needs exact linear optimisation in three places:
//!
//! * the **β = 0** objective of the (q, β) load-balance family is linear
//!   (`V_ij(s) = q_ij·s`), so its optimal first weights are LP duals
//!   (TABLE I, Fig. 6/7 with SPEF0);
//! * the **min-MLU** and **min-max** columns of TABLE I are solutions of the
//!   classic maximum-link-utilization LP;
//! * the `Route_t` subproblem of Algorithm 1 is a min-cost network-flow
//!   problem, which we cross-validate against a dedicated combinatorial
//!   solver.
//!
//! No sufficiently capable LP crate is available offline, so this crate
//! implements the substrate from scratch:
//!
//! * [`simplex`] — a two-phase simplex on a flat single-allocation tableau
//!   arena for general LPs `min/max c'x  s.t.  Ax {≤,=,≥} b, x ≥ 0`, with
//!   **dual extraction** (strong duality and complementary slackness are
//!   verified in tests) and a reusable [`SimplexWorkspace`] with a
//!   warm-start [`resolve`](LinearProgram::resolve) path for repeated
//!   solves,
//! * [`mincost_flow`] — successive shortest paths with Johnson potentials,
//! * [`maxflow`] — Dinic's algorithm, used for feasibility checks when
//!   scaling traffic matrices.
//!
//! # Example
//!
//! ```
//! use spef_lp::simplex::{LinearProgram, Relation};
//!
//! # fn main() -> Result<(), spef_lp::simplex::SimplexError> {
//! // max 3x + 2y  s.t. x + y <= 4, x <= 2
//! let mut lp = LinearProgram::maximize(2);
//! lp.set_objective(0, 3.0);
//! lp.set_objective(1, 2.0);
//! lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
//! let sol = lp.solve()?;
//! assert!((sol.objective() - 10.0).abs() < 1e-9); // x=2, y=2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maxflow;
pub mod mincost_flow;
pub mod simplex;

pub use maxflow::max_flow;
pub use mincost_flow::{MinCostFlow, MinCostFlowError};
pub use simplex::{LinearProgram, Relation, SimplexError, SimplexWorkspace, Solution};
