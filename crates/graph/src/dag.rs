//! Shortest-path DAGs toward a destination — the sets `ON_t` of the paper.
//!
//! For a destination `t` and link weights `w`, the shortest-path DAG contains
//! exactly the links that lie on *some* shortest path to `t`. OSPF's ECMP,
//! SPEF's exponential flow-splitting (Algorithm 3) and PEFT's downward
//! forwarding all operate on this structure.
//!
//! §V.G of the paper requires equal-cost detection **with a tolerance**: with
//! integer (rounded) weights, two path costs are treated as equal by
//! Dijkstra's algorithm "if the difference in costs is less than the
//! specified tolerance". [`ShortestPathDag::build`] takes that tolerance
//! explicitly; `0.0` gives exact ECMP.

use crate::dijkstra::distances_to;
use crate::{EdgeId, Graph, GraphError, NodeId};

/// The shortest-path DAG `ON_t` toward one destination.
///
/// A link `(u, v)` belongs to the DAG iff
/// `w_uv + dist(v) − dist(u) ≤ tol` *and* `dist(v) < dist(u)`.
/// The second condition keeps the structure acyclic even with a positive
/// tolerance or zero-weight links: distance strictly decreases along every
/// DAG edge.
///
/// With **strictly positive** weights (which Theorem 3.1 of the paper
/// guarantees for optimal first weights) the strict-decrease condition is
/// implied, and every node that can reach the target has at least one
/// successor. With zero-weight links, nodes tied in distance across a
/// zero-weight edge may conservatively end up without successors; callers
/// that synthesise intermediate weights (e.g. subgradient iterates, whose
/// projection can touch zero) must floor them above zero first.
///
/// # Example
///
/// ```
/// use spef_graph::{Graph, ShortestPathDag};
///
/// # fn main() -> Result<(), spef_graph::GraphError> {
/// let mut g = Graph::with_nodes(4);
/// let up0 = g.add_edge(0.into(), 1.into());
/// let lo0 = g.add_edge(0.into(), 2.into());
/// let up1 = g.add_edge(1.into(), 3.into());
/// let lo1 = g.add_edge(2.into(), 3.into());
/// let dag = ShortestPathDag::build(&g, &[1.0, 1.0, 1.0, 1.0], 3.into(), 0.0)?;
/// assert_eq!(dag.successors(0.into()), &[up0, lo0]);
/// assert_eq!(dag.successors(1.into()), &[up1]);
/// assert_eq!(dag.path_count(0.into()), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShortestPathDag {
    target: NodeId,
    tol: f64,
    dist: Vec<f64>,
    /// DAG edges leaving each node (toward the target).
    succ: Vec<Vec<EdgeId>>,
    /// DAG edges entering each node.
    pred: Vec<Vec<EdgeId>>,
    /// Membership flag per edge.
    on_dag: Vec<bool>,
    /// Reachable nodes sorted by decreasing distance (target last).
    order_desc: Vec<NodeId>,
    /// Number of shortest paths from each node to the target (saturating).
    path_counts: Vec<u64>,
}

impl ShortestPathDag {
    /// Builds the shortest-path DAG toward `target` under `weights`, with
    /// equal-cost tolerance `tol`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`distances_to`], plus
    /// [`GraphError::InvalidWeight`] if `tol` is negative or not finite.
    pub fn build(
        graph: &Graph,
        weights: &[f64],
        target: NodeId,
        tol: f64,
    ) -> Result<Self, GraphError> {
        if !tol.is_finite() || tol < 0.0 {
            return Err(GraphError::InvalidWeight {
                edge: EdgeId::new(usize::MAX),
                weight: tol,
            });
        }
        let dist = distances_to(graph, weights, target)?;

        let n = graph.node_count();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        let mut on_dag = vec![false; graph.edge_count()];
        for (e, u, v) in graph.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            if !du.is_finite() || !dv.is_finite() {
                continue;
            }
            let slack = weights[e.index()] + dv - du;
            if slack <= tol && dv < du {
                succ[u.index()].push(e);
                pred[v.index()].push(e);
                on_dag[e.index()] = true;
            }
        }

        let mut order_desc: Vec<NodeId> = graph
            .nodes()
            .filter(|u| dist[u.index()].is_finite())
            .collect();
        order_desc.sort_by(|a, b| {
            dist[b.index()]
                .total_cmp(&dist[a.index()])
                .then_with(|| a.index().cmp(&b.index()))
        });

        // Path counts by increasing distance (reverse of order_desc).
        let mut path_counts = vec![0u64; n];
        path_counts[target.index()] = 1;
        for &u in order_desc.iter().rev() {
            if u == target {
                continue;
            }
            let mut total = 0u64;
            for &e in &succ[u.index()] {
                let v = graph.target(e);
                total = total.saturating_add(path_counts[v.index()]);
            }
            path_counts[u.index()] = total;
        }

        Ok(ShortestPathDag {
            target,
            tol,
            dist,
            succ,
            pred,
            on_dag,
            order_desc,
            path_counts,
        })
    }

    /// Assembles a DAG from pre-computed parts — used by the batched
    /// engine ([`crate::batch::DagSet`]) to materialise owned DAGs without
    /// re-running the legacy single-destination path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        target: NodeId,
        tol: f64,
        dist: Vec<f64>,
        succ: Vec<Vec<EdgeId>>,
        pred: Vec<Vec<EdgeId>>,
        on_dag: Vec<bool>,
        order_desc: Vec<NodeId>,
        path_counts: Vec<u64>,
    ) -> ShortestPathDag {
        ShortestPathDag {
            target,
            tol,
            dist,
            succ,
            pred,
            on_dag,
            order_desc,
            path_counts,
        }
    }

    /// The destination this DAG routes toward.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The equal-cost tolerance the DAG was built with.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Shortest distance from `u` to the target (`f64::INFINITY` if
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn distance(&self, u: NodeId) -> f64 {
        self.dist[u.index()]
    }

    /// All per-node distances, indexed by node id.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// DAG edges leaving `u` — the next-hop links of `u` toward the target.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn successors(&self, u: NodeId) -> &[EdgeId] {
        &self.succ[u.index()]
    }

    /// DAG edges entering `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn predecessors(&self, v: NodeId) -> &[EdgeId] {
        &self.pred[v.index()]
    }

    /// Returns `true` if edge `e` lies on some shortest path to the target.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.on_dag[e.index()]
    }

    /// Returns `true` if the target is reachable from `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn reaches_target(&self, u: NodeId) -> bool {
        self.dist[u.index()].is_finite()
    }

    /// Reachable nodes in order of **decreasing** distance to the target
    /// (the target itself comes last).
    ///
    /// This is exactly the processing order of Algorithm 3 of the paper
    /// ("sorting on the distance of node s to t ... in the decreasing
    /// distance order"): when a node is processed, all of its DAG
    /// predecessors have already been processed.
    pub fn nodes_by_decreasing_distance(&self) -> &[NodeId] {
        &self.order_desc
    }

    /// Number of distinct equal-cost shortest paths from `u` to the target,
    /// saturating at `u64::MAX`. Zero if unreachable.
    ///
    /// Used for the equal-cost-path census of TABLE V.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn path_count(&self, u: NodeId) -> u64 {
        self.path_counts[u.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond with a longer lower path: 0→1→3 costs 2, 0→2→3 costs 2+ε.
    fn near_tie(eps: f64) -> (Graph, Vec<f64>) {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into()); // e0
        g.add_edge(0.into(), 2.into()); // e1
        g.add_edge(1.into(), 3.into()); // e2
        g.add_edge(2.into(), 3.into()); // e3
        (g, vec![1.0, 1.0 + eps, 1.0, 1.0])
    }

    #[test]
    fn exact_tolerance_excludes_near_ties() {
        let (g, w) = near_tie(0.1);
        let dag = ShortestPathDag::build(&g, &w, 3.into(), 0.0).unwrap();
        assert_eq!(dag.successors(0.into()).len(), 1);
        assert_eq!(dag.path_count(0.into()), 1);
    }

    #[test]
    fn positive_tolerance_includes_near_ties() {
        let (g, w) = near_tie(0.1);
        let dag = ShortestPathDag::build(&g, &w, 3.into(), 0.3).unwrap();
        assert_eq!(dag.successors(0.into()).len(), 2);
        assert_eq!(dag.path_count(0.into()), 2);
    }

    #[test]
    fn dag_edges_strictly_decrease_distance() {
        let (g, w) = near_tie(0.1);
        let dag = ShortestPathDag::build(&g, &w, 3.into(), 0.5).unwrap();
        for (e, u, v) in g.edges() {
            if dag.contains_edge(e) {
                assert!(dag.distance(v) < dag.distance(u));
            }
        }
    }

    #[test]
    fn decreasing_order_ends_at_target() {
        let (g, w) = near_tie(0.0);
        let dag = ShortestPathDag::build(&g, &w, 3.into(), 0.0).unwrap();
        let order = dag.nodes_by_decreasing_distance();
        assert_eq!(*order.last().unwrap(), NodeId::new(3));
        for pair in order.windows(2) {
            assert!(dag.distance(pair[0]) >= dag.distance(pair[1]));
        }
    }

    #[test]
    fn unreachable_nodes_excluded() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        // Node 2 is isolated.
        let dag = ShortestPathDag::build(&g, &[1.0], 1.into(), 0.0).unwrap();
        assert!(!dag.reaches_target(2.into()));
        assert_eq!(dag.path_count(2.into()), 0);
        assert_eq!(dag.nodes_by_decreasing_distance().len(), 2);
    }

    #[test]
    fn path_count_grid_is_binomial() {
        // 3x3 grid, all weights 1: paths from corner to corner = C(4,2) = 6.
        let mut g = Graph::with_nodes(9);
        for r in 0..3usize {
            for c in 0..3usize {
                let id = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(id.into(), (id + 1).into());
                }
                if r + 1 < 3 {
                    g.add_edge(id.into(), (id + 3).into());
                }
            }
        }
        let w = vec![1.0; g.edge_count()];
        let dag = ShortestPathDag::build(&g, &w, 8.into(), 0.0).unwrap();
        assert_eq!(dag.path_count(0.into()), 6);
        assert_eq!(dag.distance(0.into()), 4.0);
    }

    #[test]
    fn negative_tolerance_rejected() {
        let (g, w) = near_tie(0.0);
        assert!(ShortestPathDag::build(&g, &w, 3.into(), -0.1).is_err());
        assert!(ShortestPathDag::build(&g, &w, 3.into(), f64::NAN).is_err());
    }

    #[test]
    fn zero_weight_edges_do_not_create_cycles() {
        // 0 <-> 1 with zero weights plus exit 1 -> 2. Both 0 and 1 sit at
        // distance 1; the zero-weight tie edges are conservatively excluded
        // because distance does not strictly decrease along them, which keeps
        // the structure acyclic. (SPEF weights are strictly positive —
        // Theorem 3.1 — so this corner never arises in the protocol; callers
        // that synthesise weights must floor them above zero, see
        // `spef-core::dual_decomp`.)
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 0.into());
        g.add_edge(1.into(), 2.into());
        let dag = ShortestPathDag::build(&g, &[0.0, 0.0, 1.0], 2.into(), 0.0).unwrap();
        assert_eq!(dag.distance(0.into()), 1.0);
        assert!(dag.successors(0.into()).is_empty());
        assert_eq!(dag.successors(1.into()).len(), 1);
        assert!(!dag.contains_edge(EdgeId::new(0)));
        assert!(!dag.contains_edge(EdgeId::new(1)));
        assert!(dag.contains_edge(EdgeId::new(2)));
    }

    #[test]
    fn target_has_no_successors_and_one_path() {
        let (g, w) = near_tie(0.0);
        let dag = ShortestPathDag::build(&g, &w, 3.into(), 0.0).unwrap();
        assert!(dag.successors(3.into()).is_empty());
        assert_eq!(dag.path_count(3.into()), 1);
        assert_eq!(dag.target(), NodeId::new(3));
    }
}
