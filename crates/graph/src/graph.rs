use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices `0..graph.node_count()`, assigned in insertion
/// order, and remain stable for the lifetime of the graph (nodes cannot be
/// removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// Identifier of a directed edge (link) in a [`Graph`].
///
/// Edge ids are dense indices `0..graph.edge_count()` in insertion order.
/// All per-link quantities in this workspace — capacities, first weights,
/// second weights, flows, spare capacities — are stored as `Vec<f64>` indexed
/// by `EdgeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Creates an edge id from a raw index.
    pub const fn new(index: usize) -> Self {
        EdgeId(index)
    }

    /// Returns the raw index of this edge.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId(index)
    }
}

/// A compact directed multigraph.
///
/// The network model of the paper: `G = (N, J)` with vertex set `N` and
/// directed edge set `J`. Parallel edges are allowed (two PoPs may be joined
/// by several circuits); self-loops are rejected because no routing algorithm
/// in the paper is defined over them.
///
/// # Example
///
/// ```
/// use spef_graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b);
/// assert_eq!(g.endpoints(e), (a, b));
/// assert_eq!(g.out_edges(a), &[e]);
/// assert_eq!(g.in_edges(b), &[e]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// Endpoint pairs `(source, target)` indexed by `EdgeId`.
    edges: Vec<(NodeId, NodeId)>,
    /// Outgoing edge ids per node.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_edges: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            out_edges: vec![Vec::new(); n],
            in_edges: vec![Vec::new(); n],
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.out_edges.len());
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a directed edge `u -> v` and returns its id.
    ///
    /// Parallel edges are allowed.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not a node of this graph, or if `u == v`
    /// (self-loops carry no routing semantics in the SPEF model).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u.0 < self.node_count(), "source {u} out of range");
        assert!(v.0 < self.node_count(), "target {v} out of range");
        assert_ne!(u, v, "self-loops are not supported");
        let id = EdgeId(self.edges.len());
        self.edges.push((u, v));
        self.out_edges[u.0].push(id);
        self.in_edges[v.0].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Source node of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn source(&self, e: EdgeId) -> NodeId {
        self.edges[e.0].0
    }

    /// Target node of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn target(&self, e: EdgeId) -> NodeId {
        self.edges[e.0].1
    }

    /// Both endpoints `(source, target)` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.0]
    }

    /// Edges leaving node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_edges(&self, u: NodeId) -> &[EdgeId] {
        &self.out_edges[u.0]
    }

    /// Edges entering node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edges[v.0]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId)
    }

    /// Iterates over `(edge, source, target)` triples.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i), u, v))
    }

    /// Finds the first edge `u -> v`, if any.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.out_edges
            .get(u.0)?
            .iter()
            .copied()
            .find(|&e| self.edges[e.0].1 == v)
    }

    /// Returns `true` if some edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_edges[u.0].len()
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges[v.0].len()
    }

    /// Returns the reverse graph: same nodes, every edge flipped.
    ///
    /// Edge ids are preserved — edge `e: u -> v` becomes `e: v -> u` — so
    /// per-edge data vectors remain valid against the reverse graph.
    pub fn reverse(&self) -> Graph {
        let mut rev = Graph::with_nodes(self.node_count());
        for &(u, v) in &self.edges {
            rev.add_edge(v, u);
        }
        rev
    }

    /// Applies the node-arc incidence matrix `B` to a per-edge flow vector:
    /// returns the net divergence `(Bf)_i = Σ_out f_e − Σ_in f_e` per node.
    ///
    /// A vector `f` is a feasible routing of demand `d^t` toward destination
    /// `t` iff `divergence(f)[s] = d_s^t` for `s ≠ t` (constraint (1b) of the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if `flow.len() != self.edge_count()`.
    pub fn divergence(&self, flow: &[f64]) -> Vec<f64> {
        assert_eq!(flow.len(), self.edge_count(), "flow vector length mismatch");
        let mut div = vec![0.0; self.node_count()];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            div[u.0] += flow[i];
            div[v.0] -= flow[i];
        }
        div
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, [NodeId; 4], [EdgeId; 4]) {
        let mut g = Graph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        let e0 = g.add_edge(s, a);
        let e1 = g.add_edge(s, b);
        let e2 = g.add_edge(a, t);
        let e3 = g.add_edge(b, t);
        (g, [s, a, b, t], [e0, e1, e2, e3])
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let (g, [s, a, b, t], [e0, e1, e2, e3]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(s.index(), 0);
        assert_eq!(t.index(), 3);
        assert_eq!(g.endpoints(e0), (s, a));
        assert_eq!(g.endpoints(e1), (s, b));
        assert_eq!(g.endpoints(e2), (a, t));
        assert_eq!(g.endpoints(e3), (b, t));
    }

    #[test]
    fn adjacency_lists_match_edges() {
        let (g, [s, a, b, t], [e0, e1, e2, e3]) = diamond();
        assert_eq!(g.out_edges(s), &[e0, e1]);
        assert_eq!(g.in_edges(t), &[e2, e3]);
        assert_eq!(g.out_degree(s), 2);
        assert_eq!(g.in_degree(s), 0);
        assert_eq!(g.out_degree(t), 0);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.in_degree(b), 1);
    }

    #[test]
    fn find_edge_and_has_edge() {
        let (g, [s, a, _b, t], [e0, ..]) = diamond();
        assert_eq!(g.find_edge(s, a), Some(e0));
        assert_eq!(g.find_edge(a, s), None);
        assert!(!g.has_edge(s, t));
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Graph::with_nodes(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let e0 = g.add_edge(a, b);
        let e1 = g.add_edge(a, b);
        assert_ne!(e0, e1);
        assert_eq!(g.out_edges(a).len(), 2);
        // find_edge returns the first parallel edge.
        assert_eq!(g.find_edge(a, b), Some(e0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId::new(0), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_to_missing_node_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId::new(0), NodeId::new(5));
    }

    #[test]
    fn reverse_preserves_edge_ids() {
        let (g, [s, a, ..], [e0, ..]) = diamond();
        let rev = g.reverse();
        assert_eq!(rev.endpoints(e0), (a, s));
        assert_eq!(rev.node_count(), g.node_count());
        assert_eq!(rev.edge_count(), g.edge_count());
    }

    #[test]
    fn divergence_is_signed_incidence() {
        let (g, [s, _a, _b, t], _) = diamond();
        // One unit on the upper path s-a-t.
        let div = g.divergence(&[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(div[s.index()], 1.0);
        assert_eq!(div[t.index()], -1.0);
        assert_eq!(div[1], 0.0);
        assert_eq!(div[2], 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
    }

    #[test]
    fn serde_roundtrip() {
        let (g, ..) = diamond();
        let json = serde_json_like(&g);
        assert!(json.contains("edges"));
    }

    // serde_json is not an approved dependency; smoke-test Serialize via the
    // compact `serde::Serialize` impl through a minimal writer instead.
    fn serde_json_like(g: &Graph) -> String {
        format!("{g:?}")
    }

    #[test]
    fn empty_graph_invariants() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edge_ids().count(), 0);
    }
}
