//! Single-source / single-destination shortest path distances.
//!
//! OSPF route computation is *per destination*: every router needs its
//! distance **to** each destination `t`, which is a shortest-path problem on
//! the reverse graph. [`distances_to`] runs Dijkstra over incoming edges
//! directly so callers never have to materialise a reversed graph.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::validate_weights;
use crate::{Graph, GraphError, NodeId};

/// A `(distance, node)` heap entry ordered as a min-heap by distance.
///
/// Shared with the batched engine in [`crate::batch`] so both paths pop
/// nodes in exactly the same order (distance, then node id).
#[derive(Debug, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) dist: f64,
    pub(crate) node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the smallest distance.
        // Distances are produced from finite non-negative weights, so
        // total_cmp is a total order consistent with numeric order here.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn check_node(graph: &Graph, node: NodeId) -> Result<(), GraphError> {
    if node.index() >= graph.node_count() {
        return Err(GraphError::NodeOutOfRange {
            node,
            nodes: graph.node_count(),
        });
    }
    Ok(())
}

/// Computes shortest-path distances **from** `source` to every node.
///
/// Unreachable nodes get `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`GraphError::WeightCount`] if `weights.len() != graph.edge_count()`,
/// [`GraphError::InvalidWeight`] if any weight is negative, NaN or infinite,
/// and [`GraphError::NodeOutOfRange`] if `source` is not in the graph.
///
/// # Example
///
/// ```
/// use spef_graph::{Graph, distances_from};
///
/// # fn main() -> Result<(), spef_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// let d = distances_from(&g, &[2.0, 3.0], 0.into())?;
/// assert_eq!(d, vec![0.0, 2.0, 5.0]);
/// # Ok(())
/// # }
/// ```
pub fn distances_from(
    graph: &Graph,
    weights: &[f64],
    source: NodeId,
) -> Result<Vec<f64>, GraphError> {
    validate_weights(graph.edge_count(), weights)?;
    check_node(graph, source)?;
    Ok(run(graph, weights, source, Direction::Forward))
}

/// Computes shortest-path distances from every node **to** `target`.
///
/// This is Dijkstra on the reverse graph; unreachable nodes get
/// `f64::INFINITY`. It is the primitive behind the per-destination
/// shortest-path sets `ON_t` of the paper.
///
/// # Errors
///
/// Same conditions as [`distances_from`].
///
/// # Example
///
/// ```
/// use spef_graph::{Graph, distances_to};
///
/// # fn main() -> Result<(), spef_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// let d = distances_to(&g, &[2.0, 3.0], 2.into())?;
/// assert_eq!(d, vec![5.0, 3.0, 0.0]);
/// # Ok(())
/// # }
/// ```
pub fn distances_to(
    graph: &Graph,
    weights: &[f64],
    target: NodeId,
) -> Result<Vec<f64>, GraphError> {
    validate_weights(graph.edge_count(), weights)?;
    check_node(graph, target)?;
    Ok(run(graph, weights, target, Direction::Reverse))
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Reverse,
}

fn run(graph: &Graph, weights: &[f64], origin: NodeId, dir: Direction) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; graph.node_count()];
    let mut settled = vec![false; graph.node_count()];
    let mut heap = BinaryHeap::with_capacity(graph.node_count());
    dist[origin.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: origin,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        let edges = match dir {
            Direction::Forward => graph.out_edges(u),
            Direction::Reverse => graph.in_edges(u),
        };
        for &e in edges {
            let v = match dir {
                Direction::Forward => graph.target(e),
                Direction::Reverse => graph.source(e),
            };
            let nd = d + weights[e.index()];
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeId;

    /// 4-node example of the paper's Fig. 1: edges (1,3), (3,4), (1,2), (2,3)
    /// with node ids 0-based.
    fn fig1() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 2.into()); // (1,3)
        g.add_edge(2.into(), 3.into()); // (3,4)
        g.add_edge(0.into(), 1.into()); // (1,2)
        g.add_edge(1.into(), 2.into()); // (2,3)
        g
    }

    #[test]
    fn forward_distances_fig1_unit_weights() {
        let g = fig1();
        let d = distances_from(&g, &[1.0; 4], 0.into()).unwrap();
        assert_eq!(d, vec![0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn reverse_distances_fig1_unit_weights() {
        let g = fig1();
        let d = distances_to(&g, &[1.0; 4], 3.into()).unwrap();
        assert_eq!(d, vec![2.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn reverse_equals_forward_on_reverse_graph() {
        let g = fig1();
        let w = [2.5, 0.5, 1.0, 3.0];
        let rev = g.reverse();
        let via_reverse_graph = distances_from(&rev, &w, 3.into()).unwrap();
        let direct = distances_to(&g, &w, 3.into()).unwrap();
        assert_eq!(via_reverse_graph, direct);
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        let d = distances_from(&g, &[1.0], 0.into()).unwrap();
        assert_eq!(d[2], f64::INFINITY);
        let d = distances_to(&g, &[1.0], 2.into()).unwrap();
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[1], f64::INFINITY);
        assert_eq!(d[2], 0.0);
    }

    #[test]
    fn zero_weights_are_allowed() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        let d = distances_from(&g, &[0.0, 0.0], 0.into()).unwrap();
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn ties_choose_minimum() {
        // Two parallel edges with different weights.
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        let d = distances_from(&g, &[5.0, 3.0], 0.into()).unwrap();
        assert_eq!(d[1], 3.0);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let g = fig1();
        assert!(matches!(
            distances_from(&g, &[1.0; 3], 0.into()),
            Err(GraphError::WeightCount { .. })
        ));
        assert_eq!(
            distances_from(&g, &[1.0, -1.0, 1.0, 1.0], 0.into()),
            Err(GraphError::InvalidWeight {
                edge: EdgeId::new(1),
                weight: -1.0
            })
        );
        assert!(matches!(
            distances_from(&g, &[1.0; 4], 17.into()),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::with_nodes(1);
        let d = distances_to(&g, &[], 0.into()).unwrap();
        assert_eq!(d, vec![0.0]);
    }
}
