//! Directed-graph substrate for the SPEF traffic-engineering reproduction.
//!
//! This crate provides the graph machinery that every algorithm in
//! *"One More Weight is Enough: Toward the Optimal Traffic Engineering with
//! OSPF"* (Xu et al., ICDCS 2011) relies on:
//!
//! * [`Graph`] — a compact directed multigraph with stable [`NodeId`] /
//!   [`EdgeId`] indices and O(1) access to in/out adjacency,
//! * [`dijkstra`] — forward and *reverse* single-destination shortest paths
//!   (OSPF computes routes per destination prefix, so the reverse variant is
//!   the workhorse),
//! * [`ShortestPathDag`] — the set `ON_t` of shortest-path links toward a
//!   destination, built with a configurable **cost tolerance** as required by
//!   §V.G of the paper (integer weights make path costs equal only up to a
//!   tolerance),
//! * [`bellman_ford`] — shortest paths under possibly negative weights, used
//!   to initialise node potentials in the min-cost-flow solver of `spef-lp`,
//! * [`traversal`] — reachability and connectivity checks used to validate
//!   topologies,
//! * [`csr`] / [`batch`] — the **batched routing engine**: flat CSR
//!   adjacency, reusable scratch arenas ([`RoutingWorkspace`]) and
//!   all-destinations DAG construction ([`DagSet`], with parallel fan-out
//!   over destinations) producing results bit-identical to the
//!   per-destination path above.
//!
//! # Example
//!
//! Build a diamond, compute the shortest-path DAG toward node `t`, and count
//! equal-cost paths:
//!
//! ```
//! use spef_graph::{Graph, ShortestPathDag};
//!
//! # fn main() -> Result<(), spef_graph::GraphError> {
//! let mut g = Graph::new();
//! let (s, a, b, t) = (g.add_node(), g.add_node(), g.add_node(), g.add_node());
//! g.add_edge(s, a);
//! g.add_edge(s, b);
//! g.add_edge(a, t);
//! g.add_edge(b, t);
//! let weights = vec![1.0, 1.0, 1.0, 1.0];
//! let dag = ShortestPathDag::build(&g, &weights, t, 0.0)?;
//! assert_eq!(dag.distance(s), 2.0);
//! assert_eq!(dag.path_count(s), 2); // s-a-t and s-b-t tie
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;

pub mod batch;
pub mod bellman_ford;
pub mod csr;
pub mod dag;
pub mod dijkstra;
pub mod traversal;

pub use error::GraphError;
pub use graph::{EdgeId, Graph, NodeId};

pub use batch::{
    batch_distances_to, build_dag_set, build_dag_set_tiled, DagAccess, DagRef, DagSet, DistanceSet,
    Parallelism, RoutingWorkspace,
};
pub use csr::Csr;
pub use dag::ShortestPathDag;
pub use dijkstra::{distances_from, distances_to};
