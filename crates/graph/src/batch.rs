//! Batched all-destinations routing: CSR Dijkstra, DAG-set construction
//! and reusable scratch arenas.
//!
//! Every solver in the SPEF workspace sits in a loop that rebuilds the
//! per-destination shortest-path DAGs `ON_t` on each iteration. The legacy
//! path ([`ShortestPathDag::build`]) allocates a fresh distance vector,
//! heap, and two `Vec<Vec<EdgeId>>` adjacency structures per destination
//! per iteration — an allocation storm that dominates the runtime of small
//! and medium instances. This module provides the batched alternative:
//!
//! * [`Csr`] adjacency is built once per graph and traversed flat;
//! * [`RoutingWorkspace`] owns every piece of per-destination scratch
//!   (heap storage, settled flags, counting buffers) and is reused across
//!   calls, so the sequential steady state performs **zero allocations**
//!   (when the parallel fan-out engages, the only per-call allocations
//!   left are the `O(dests)` task list and the shim's work cells — never
//!   the `O(dests · (nodes + edges))` arena data);
//! * [`DagSet`] holds the DAGs of *all* destinations in contiguous
//!   offset-indexed arenas (`dist`, CSR successor lists, processing
//!   orders, path counts) instead of per-destination heap objects;
//! * destinations fan out across worker threads (through the `rayon`
//!   shim) when the batch is large enough to amortise thread spawn-up —
//!   each destination writes only its own arena slices, so results are
//!   **bit-identical** to the sequential path regardless of schedule.
//!
//! Weight validation (`O(|J|)`) runs once per batch, not once per
//! destination; the per-destination Dijkstra runs unchecked.
//!
//! The legacy single-destination entry points remain available (and are
//! kept as an independent reference implementation — the property tests in
//! `tests/batch_equivalence.rs` assert bit-identical agreement between the
//! two paths).

use std::collections::BinaryHeap;

use rayon::prelude::*;

use crate::csr::Csr;
use crate::dijkstra::HeapEntry;
use crate::error::validate_weights;
use crate::{EdgeId, Graph, GraphError, NodeId, ShortestPathDag};

/// When to fan destinations out across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Parallelise when the batch is large enough to amortise thread
    /// startup (the default).
    #[default]
    Auto,
    /// Always run sequentially.
    Never,
    /// Parallelise whenever there is more than one destination (used by
    /// the schedule-independence tests).
    Always,
}

/// Estimated per-destination work below which threading costs more than it
/// saves (tuned for the std::thread-scope rayon shim, which has no
/// persistent pool).
const PAR_WORK_THRESHOLD: usize = 1 << 14;

impl Parallelism {
    fn decide(self, dests: usize, work_per_dest: usize) -> bool {
        match self {
            Parallelism::Never => false,
            Parallelism::Always => dests > 1,
            Parallelism::Auto => {
                dests > 1
                    && dests.saturating_mul(work_per_dest) >= PAR_WORK_THRESHOLD
                    && rayon::current_num_threads() > 1
            }
        }
    }
}

/// Per-destination-slot scratch: everything one Dijkstra + DAG build needs
/// beyond its output slices.
#[derive(Debug, Default)]
struct SlotScratch {
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    /// Doubles as the per-node successor counter and fill cursor during
    /// CSR construction.
    cursor: Vec<usize>,
}

impl SlotScratch {
    fn ensure(&mut self, n: usize) {
        self.settled.resize(n, false);
        self.cursor.resize(n, 0);
    }
}

/// Reusable scratch arena for batched routing computations.
///
/// One slot per destination; slots persist across calls so the steady
/// state of a solver loop (`build_dag_set` every iteration) performs no
/// heap allocation. A workspace is tied to no particular graph — it grows
/// to fit whatever it is handed.
#[derive(Debug, Default)]
pub struct RoutingWorkspace {
    slots: Vec<SlotScratch>,
}

impl RoutingWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> RoutingWorkspace {
        RoutingWorkspace::default()
    }

    fn ensure(&mut self, dests: usize, n: usize) {
        if self.slots.len() < dests {
            self.slots.resize_with(dests, SlotScratch::default);
        }
        for slot in &mut self.slots[..dests] {
            slot.ensure(n);
        }
    }

    /// Bytes of scratch capacity across all slots — one slot per
    /// destination of the largest batch (or tile) this workspace served.
    pub fn arena_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                s.settled.capacity()
                    + s.heap.capacity() * std::mem::size_of::<HeapEntry>()
                    + s.cursor.capacity() * std::mem::size_of::<usize>()
            })
            .sum()
    }
}

/// Shortest-path DAGs for a whole destination set, stored as flat arenas.
///
/// The batched analogue of `Vec<ShortestPathDag>`: per-destination data
/// lives in contiguous blocks of shared vectors rather than per-DAG heap
/// objects, and the buffers are reused across [`build_dag_set`] calls.
/// Access per-destination views through [`DagSet::dag`].
#[derive(Debug, Clone, Default)]
pub struct DagSet {
    n: usize,
    /// Successor-arena block stride: `max(edge_count, 1)` so zero-edge
    /// graphs still chunk cleanly.
    m_block: usize,
    tol: f64,
    dests: Vec<NodeId>,
    /// `dist[i * n + u]`: distance from `u` to destination `i`.
    dist: Vec<f64>,
    /// `succ_off[i * (n + 1) + u]`: block-relative offsets into the
    /// destination's successor block.
    succ_off: Vec<usize>,
    /// Successor edge ids, `m_block` slots per destination.
    succ: Vec<EdgeId>,
    /// DAG membership per edge, `m_block` slots per destination.
    on_dag: Vec<bool>,
    /// Reachable nodes by decreasing distance, `n` slots per destination
    /// (only the first `order_len[i]` are meaningful).
    order: Vec<NodeId>,
    order_len: Vec<usize>,
    /// Saturating shortest-path counts, `n` slots per destination.
    path_counts: Vec<u64>,
}

impl DagSet {
    /// Creates an empty set; arenas grow on first use.
    pub fn new() -> DagSet {
        DagSet::default()
    }

    /// Number of destinations covered.
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// Returns `true` if the set covers no destinations.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// The destinations, in build order.
    pub fn destinations(&self) -> &[NodeId] {
        &self.dests
    }

    /// The equal-cost tolerance the set was built with.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// A cheap view of destination `i`'s DAG.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn dag(&self, i: usize) -> DagRef<'_> {
        assert!(i < self.dests.len(), "destination index {i} out of range");
        let n = self.n;
        DagRef {
            target: self.dests[i],
            tol: self.tol,
            dist: &self.dist[i * n..(i + 1) * n],
            succ_off: &self.succ_off[i * (n + 1)..(i + 1) * (n + 1)],
            succ: &self.succ[i * self.m_block..(i + 1) * self.m_block],
            on_dag: &self.on_dag[i * self.m_block..(i + 1) * self.m_block],
            order: &self.order[i * n..i * n + self.order_len[i]],
            path_counts: &self.path_counts[i * n..(i + 1) * n],
        }
    }

    /// Iterates over all per-destination DAG views in build order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = DagRef<'_>> + '_ {
        (0..self.len()).map(|i| self.dag(i))
    }

    /// Materialises destination `i` as an owned [`ShortestPathDag`]
    /// (allocating), for callers that store DAGs beyond the engine's
    /// lifetime. Predecessor lists are reconstructed from `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or `graph` does not match the graph the
    /// set was built from.
    pub fn to_shortest_path_dag(&self, i: usize, graph: &Graph) -> ShortestPathDag {
        let view = self.dag(i);
        let n = self.n;
        let mut succ = Vec::with_capacity(n);
        let mut pred = vec![Vec::new(); n];
        for u in 0..n {
            let s = view.successors(NodeId::new(u));
            succ.push(s.to_vec());
            for &e in s {
                pred[graph.target(e).index()].push(e);
            }
        }
        // Predecessor lists must come out in edge-id order (the legacy
        // path pushes while scanning edges by id).
        for p in &mut pred {
            p.sort_unstable();
        }
        ShortestPathDag::from_parts(
            view.target,
            self.tol,
            view.dist.to_vec(),
            succ,
            pred,
            view.on_dag[..graph.edge_count()].to_vec(),
            view.order.to_vec(),
            view.path_counts.to_vec(),
        )
    }

    /// Bytes of arena capacity this set holds. `Vec` capacity never
    /// shrinks, so after a solve this is the high-water mark of the build —
    /// the number the scaling ablation reports as DAG-arena footprint.
    pub fn arena_bytes(&self) -> usize {
        self.dists_arena_bytes()
            + self.succ.capacity() * std::mem::size_of::<EdgeId>()
            + self.on_dag.capacity()
            + self.order.capacity() * std::mem::size_of::<NodeId>()
            + self.path_counts.capacity() * std::mem::size_of::<u64>()
    }

    fn dists_arena_bytes(&self) -> usize {
        self.dests.capacity() * std::mem::size_of::<NodeId>()
            + self.dist.capacity() * std::mem::size_of::<f64>()
            + self.succ_off.capacity() * std::mem::size_of::<usize>()
            + self.order_len.capacity() * std::mem::size_of::<usize>()
    }

    fn prepare(&mut self, dests: &[NodeId], n: usize, m: usize, tol: f64) {
        let d = dests.len();
        let m_block = m.max(1);
        self.n = n;
        self.m_block = m_block;
        self.tol = tol;
        self.dests.clear();
        self.dests.extend_from_slice(dests);
        self.dist.resize(d * n, 0.0);
        self.succ_off.resize(d * (n + 1), 0);
        self.succ.resize(d * m_block, EdgeId::new(0));
        self.on_dag.resize(d * m_block, false);
        self.order.resize(d * n, NodeId::new(0));
        self.order_len.resize(d, 0);
        self.path_counts.resize(d * n, 0);
    }
}

/// A borrowed view of one destination's DAG inside a [`DagSet`].
///
/// Mirrors the accessor surface of [`ShortestPathDag`]; both implement
/// [`DagAccess`] so downstream algorithms are generic over the storage.
#[derive(Debug, Clone, Copy)]
pub struct DagRef<'a> {
    target: NodeId,
    tol: f64,
    dist: &'a [f64],
    succ_off: &'a [usize],
    succ: &'a [EdgeId],
    on_dag: &'a [bool],
    order: &'a [NodeId],
    path_counts: &'a [u64],
}

impl<'a> DagRef<'a> {
    /// The destination this DAG routes toward.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The equal-cost tolerance the DAG was built with.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Shortest distance from `u` to the target (`f64::INFINITY` if
    /// unreachable).
    pub fn distance(&self, u: NodeId) -> f64 {
        self.dist[u.index()]
    }

    /// All per-node distances, indexed by node id.
    pub fn distances(&self) -> &'a [f64] {
        self.dist
    }

    /// DAG edges leaving `u`, in edge-id order.
    pub fn successors(&self, u: NodeId) -> &'a [EdgeId] {
        &self.succ[self.succ_off[u.index()]..self.succ_off[u.index() + 1]]
    }

    /// Returns `true` if edge `e` lies on some shortest path to the target.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.on_dag[e.index()]
    }

    /// Returns `true` if the target is reachable from `u`.
    pub fn reaches_target(&self, u: NodeId) -> bool {
        self.dist[u.index()].is_finite()
    }

    /// Reachable nodes in decreasing-distance order (target last).
    pub fn nodes_by_decreasing_distance(&self) -> &'a [NodeId] {
        self.order
    }

    /// Number of equal-cost shortest paths from `u`, saturating.
    pub fn path_count(&self, u: NodeId) -> u64 {
        self.path_counts[u.index()]
    }
}

/// Storage-agnostic read access to a per-destination shortest-path DAG.
///
/// Implemented by the legacy owned [`ShortestPathDag`], the arena-backed
/// [`DagRef`], and references to either, so traffic-distribution code can
/// run over both without conversion.
pub trait DagAccess {
    /// The destination this DAG routes toward.
    fn dag_target(&self) -> NodeId;
    /// All per-node distances to the target.
    fn dag_distances(&self) -> &[f64];
    /// DAG edges leaving `u`, in edge-id order.
    fn dag_successors(&self, u: NodeId) -> &[EdgeId];
    /// Reachable nodes in decreasing-distance order (target last).
    fn dag_order_desc(&self) -> &[NodeId];

    /// Distance from `u` to the target.
    fn dag_distance(&self, u: NodeId) -> f64 {
        self.dag_distances()[u.index()]
    }

    /// Whether the target is reachable from `u`.
    fn dag_reaches_target(&self, u: NodeId) -> bool {
        self.dag_distance(u).is_finite()
    }
}

impl DagAccess for ShortestPathDag {
    fn dag_target(&self) -> NodeId {
        self.target()
    }
    fn dag_distances(&self) -> &[f64] {
        self.distances()
    }
    fn dag_successors(&self, u: NodeId) -> &[EdgeId] {
        self.successors(u)
    }
    fn dag_order_desc(&self) -> &[NodeId] {
        self.nodes_by_decreasing_distance()
    }
}

impl DagAccess for DagRef<'_> {
    fn dag_target(&self) -> NodeId {
        self.target()
    }
    fn dag_distances(&self) -> &[f64] {
        self.distances()
    }
    fn dag_successors(&self, u: NodeId) -> &[EdgeId] {
        self.successors(u)
    }
    fn dag_order_desc(&self) -> &[NodeId] {
        self.nodes_by_decreasing_distance()
    }
}

impl<T: DagAccess + ?Sized> DagAccess for &T {
    fn dag_target(&self) -> NodeId {
        (**self).dag_target()
    }
    fn dag_distances(&self) -> &[f64] {
        (**self).dag_distances()
    }
    fn dag_successors(&self, u: NodeId) -> &[EdgeId] {
        (**self).dag_successors(u)
    }
    fn dag_order_desc(&self) -> &[NodeId] {
        (**self).dag_order_desc()
    }
}

/// One destination's mutable arena slices plus its scratch slot — the unit
/// of work handed to each (possibly parallel) DAG build.
struct DagTask<'a> {
    target: NodeId,
    scratch: &'a mut SlotScratch,
    dist: &'a mut [f64],
    succ_off: &'a mut [usize],
    succ: &'a mut [EdgeId],
    on_dag: &'a mut [bool],
    order: &'a mut [NodeId],
    order_len: &'a mut usize,
    path_counts: &'a mut [u64],
}

/// Builds the shortest-path DAGs of every destination in `dests` into
/// `out`, reusing `ws` scratch and `in_csr` adjacency.
///
/// Semantically equivalent to calling [`ShortestPathDag::build`] per
/// destination — the results are bit-identical, including tie-breaking —
/// but weights are validated once, nothing is allocated in the steady
/// state, and large batches fan out across worker threads.
///
/// `in_csr` must be [`Csr::in_of`] of `graph`.
///
/// # Errors
///
/// Same conditions as [`ShortestPathDag::build`]: invalid weights or
/// tolerance, or a destination out of range.
#[allow(clippy::too_many_arguments)]
pub fn build_dag_set(
    graph: &Graph,
    in_csr: &Csr,
    weights: &[f64],
    dests: &[NodeId],
    tol: f64,
    par: Parallelism,
    ws: &mut RoutingWorkspace,
    out: &mut DagSet,
) -> Result<(), GraphError> {
    validate_dag_inputs(graph, weights, dests, tol)?;
    let n = graph.node_count();
    let m = graph.edge_count();
    out.prepare(dests, n, m, tol);
    ws.ensure(dests.len(), n);
    let m_block = out.m_block;

    let tasks = ws.slots[..dests.len()]
        .iter_mut()
        .zip(out.dist.chunks_mut(n))
        .zip(out.succ_off.chunks_mut(n + 1))
        .zip(out.succ.chunks_mut(m_block))
        .zip(out.on_dag.chunks_mut(m_block))
        .zip(out.order.chunks_mut(n))
        .zip(out.order_len.iter_mut())
        .zip(out.path_counts.chunks_mut(n))
        .zip(dests.iter())
        .map(
            |((((((((scratch, dist), succ_off), succ), on_dag), order), order_len), pc), &t)| {
                DagTask {
                    target: t,
                    scratch,
                    dist,
                    succ_off,
                    succ,
                    on_dag,
                    order,
                    order_len,
                    path_counts: pc,
                }
            },
        );

    if par.decide(dests.len(), n + m) {
        tasks
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|task| build_one_dag(graph, in_csr, weights, tol, task));
    } else {
        for task in tasks {
            build_one_dag(graph, in_csr, weights, tol, task);
        }
    }
    Ok(())
}

/// The input validation of [`build_dag_set`], exposed so the incremental
/// rebuild path in higher layers can reject bad inputs with **identical**
/// errors (and in the identical order) to a dense build before deciding
/// which destinations to rebuild.
///
/// # Errors
///
/// Same conditions as [`ShortestPathDag::build`]: invalid weights or
/// tolerance, or a destination out of range.
pub fn validate_dag_inputs(
    graph: &Graph,
    weights: &[f64],
    dests: &[NodeId],
    tol: f64,
) -> Result<(), GraphError> {
    if !tol.is_finite() || tol < 0.0 {
        return Err(GraphError::InvalidWeight {
            edge: EdgeId::new(usize::MAX),
            weight: tol,
        });
    }
    validate_weights(graph.edge_count(), weights)?;
    let n = graph.node_count();
    for &t in dests {
        if t.index() >= n {
            return Err(GraphError::NodeOutOfRange { node: t, nodes: n });
        }
    }
    Ok(())
}

/// Rebuilds **only the flagged destination slots** of `out` in place under
/// `weights`, leaving every other slot's arenas untouched — the delta step
/// of the incremental SPF path.
///
/// `out` must hold a DAG set previously built by [`build_dag_set`] over
/// the same graph with the same destination list and tolerance; `dirty`
/// is one flag per destination slot. Each rebuilt slot runs the exact
/// same Dijkstra + classification as a dense build ([`build_one_dag`]
/// over the slot's own arena slices), so a rebuilt slot is bit-identical
/// to what a dense [`build_dag_set`] call would produce for it. The
/// *caller* is responsible for flagging every destination whose DAG could
/// change under the new weights — clean slots are trusted as-is.
///
/// Inputs are assumed pre-validated via [`validate_dag_inputs`] (the
/// weights are revalidated defensively, since stale weights here would
/// silently corrupt the arena).
///
/// # Errors
///
/// Propagates weight validation failures.
///
/// # Panics
///
/// Panics if `dirty` is misaligned with `out`'s destinations or `out`'s
/// geometry does not match `graph`.
#[allow(clippy::too_many_arguments)]
pub fn rebuild_dag_set_slots(
    graph: &Graph,
    in_csr: &Csr,
    weights: &[f64],
    dirty: &[bool],
    par: Parallelism,
    ws: &mut RoutingWorkspace,
    out: &mut DagSet,
) -> Result<(), GraphError> {
    validate_weights(graph.edge_count(), weights)?;
    let n = graph.node_count();
    let m = graph.edge_count();
    let d = out.dests.len();
    assert_eq!(dirty.len(), d, "one dirty flag per destination slot");
    assert_eq!(out.n, n, "DAG set node geometry matches the graph");
    assert_eq!(out.m_block, m.max(1), "DAG set edge geometry matches");
    let tol = out.tol;
    ws.ensure(d, n);
    let m_block = out.m_block;

    let tasks = ws.slots[..d]
        .iter_mut()
        .zip(out.dist.chunks_mut(n))
        .zip(out.succ_off.chunks_mut(n + 1))
        .zip(out.succ.chunks_mut(m_block))
        .zip(out.on_dag.chunks_mut(m_block))
        .zip(out.order.chunks_mut(n))
        .zip(out.order_len.iter_mut())
        .zip(out.path_counts.chunks_mut(n))
        .zip(out.dests.iter())
        .zip(dirty.iter())
        .filter(|task_and_flag| *task_and_flag.1)
        .map(
            |(
                ((((((((scratch, dist), succ_off), succ), on_dag), order), order_len), pc), &t),
                _,
            )| DagTask {
                target: t,
                scratch,
                dist,
                succ_off,
                succ,
                on_dag,
                order,
                order_len,
                path_counts: pc,
            },
        );

    let dirty_count = dirty.iter().filter(|&&b| b).count();
    if par.decide(dirty_count, n + m) {
        tasks
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|task| build_one_dag(graph, in_csr, weights, tol, task));
    } else {
        for task in tasks {
            build_one_dag(graph, in_csr, weights, tol, task);
        }
    }
    Ok(())
}

/// Builds the DAGs of `dests` one bounded **tile** at a time instead of in
/// one dense `O(dests · (nodes + edges))` arena: each tile of at most
/// `tile` destinations is built into `out` (overwriting the previous
/// tile's data, so `out`'s high-water footprint is `O(tile · edges)`), the
/// tile fans out across worker threads exactly like [`build_dag_set`], and
/// `visit(offset, tile_dests, out)` is called before the next tile
/// overwrites it. Per-destination results are bit-identical to the dense
/// build: each destination's Dijkstra and classification are independent,
/// so slicing the batch changes nothing but peak memory.
///
/// # Errors
///
/// Same conditions as [`build_dag_set`], plus whatever `visit` returns;
/// the error type only needs a `From<GraphError>` conversion so callers in
/// higher layers can thread their own error through the visitor.
///
/// # Panics
///
/// Panics if `tile` is zero.
#[allow(clippy::too_many_arguments)]
pub fn build_dag_set_tiled<E, F>(
    graph: &Graph,
    in_csr: &Csr,
    weights: &[f64],
    dests: &[NodeId],
    tol: f64,
    par: Parallelism,
    tile: usize,
    ws: &mut RoutingWorkspace,
    out: &mut DagSet,
    mut visit: F,
) -> Result<(), E>
where
    E: From<GraphError>,
    F: FnMut(usize, &[NodeId], &DagSet) -> Result<(), E>,
{
    assert!(tile > 0, "tile size must be at least 1");
    let mut offset = 0;
    for chunk in dests.chunks(tile) {
        build_dag_set(graph, in_csr, weights, chunk, tol, par, ws, out)?;
        visit(offset, chunk, out)?;
        offset += chunk.len();
    }
    // An empty destination set still leaves `out` in a consistent state.
    if dests.is_empty() {
        build_dag_set(graph, in_csr, weights, dests, tol, par, ws, out)?;
    }
    Ok(())
}

/// Per-destination DAG build into arena slices. Mirrors the legacy
/// [`ShortestPathDag::build`] step by step so floating-point results and
/// all orderings are identical.
fn build_one_dag(graph: &Graph, in_csr: &Csr, weights: &[f64], tol: f64, task: DagTask<'_>) {
    let n = graph.node_count();
    let m = graph.edge_count();
    let DagTask {
        target,
        scratch,
        dist,
        succ_off,
        succ,
        on_dag,
        order,
        order_len,
        path_counts,
    } = task;

    dijkstra_csr(in_csr, weights, target, dist, scratch);

    // Classify edges (in id order, exactly like the legacy path) and count
    // successors per node. Edges masked out of the CSR must never join the
    // DAG even when the slack test would accept them: the distances above
    // were computed over the masked view, so an undirected-symmetric failed
    // edge can still look tight here.
    let disabled = in_csr.disabled_edges();
    on_dag[..m].fill(false);
    scratch.cursor[..n].fill(0);
    for (e, u, v) in graph.edges() {
        if !disabled.is_empty() && disabled[e.index()] {
            continue;
        }
        let (du, dv) = (dist[u.index()], dist[v.index()]);
        if !du.is_finite() || !dv.is_finite() {
            continue;
        }
        let slack = weights[e.index()] + dv - du;
        if slack <= tol && dv < du {
            on_dag[e.index()] = true;
            scratch.cursor[u.index()] += 1;
        }
    }
    // Prefix sums -> block-relative CSR offsets; cursor becomes the fill
    // position of each node.
    succ_off[0] = 0;
    for u in 0..n {
        let count = scratch.cursor[u];
        scratch.cursor[u] = succ_off[u];
        succ_off[u + 1] = succ_off[u] + count;
    }
    for (e, u, _) in graph.edges() {
        if on_dag[e.index()] {
            succ[scratch.cursor[u.index()]] = e;
            scratch.cursor[u.index()] += 1;
        }
    }

    // Reachable nodes by decreasing distance (id-tiebroken, so the order is
    // unique and schedule-independent).
    let mut len = 0;
    for (u, d) in dist.iter().enumerate() {
        if d.is_finite() {
            order[len] = NodeId::new(u);
            len += 1;
        }
    }
    *order_len = len;
    let order = &mut order[..len];
    order.sort_unstable_by(|a, b| {
        dist[b.index()]
            .total_cmp(&dist[a.index()])
            .then_with(|| a.index().cmp(&b.index()))
    });

    // Path counts by increasing distance.
    path_counts[..n].fill(0);
    path_counts[target.index()] = 1;
    for &u in order.iter().rev() {
        if u == target {
            continue;
        }
        let mut total = 0u64;
        for &e in &succ[succ_off[u.index()]..succ_off[u.index() + 1]] {
            total = total.saturating_add(path_counts[graph.target(e).index()]);
        }
        path_counts[u.index()] = total;
    }
}

/// Dijkstra toward `origin` over the in-edge CSR, writing distances into
/// `dist`. Weights are assumed pre-validated. Relaxation order matches the
/// legacy [`crate::distances_to`] exactly.
fn dijkstra_csr(
    in_csr: &Csr,
    weights: &[f64],
    origin: NodeId,
    dist: &mut [f64],
    scratch: &mut SlotScratch,
) {
    dist.fill(f64::INFINITY);
    scratch.settled.fill(false);
    scratch.heap.clear();
    dist[origin.index()] = 0.0;
    scratch.heap.push(HeapEntry {
        dist: 0.0,
        node: origin,
    });
    while let Some(HeapEntry { dist: d, node: u }) = scratch.heap.pop() {
        if scratch.settled[u.index()] {
            continue;
        }
        scratch.settled[u.index()] = true;
        for &(e, v) in in_csr.neighbors(u) {
            let nd = d + weights[e.index()];
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                scratch.heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
}

/// Distances from every node to each of a set of targets, stored as one
/// flat `targets x nodes` arena.
#[derive(Debug, Clone, Default)]
pub struct DistanceSet {
    n: usize,
    targets: Vec<NodeId>,
    dist: Vec<f64>,
}

impl DistanceSet {
    /// Creates an empty set; the arena grows on first use.
    pub fn new() -> DistanceSet {
        DistanceSet::default()
    }

    /// The targets, in build order.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Distances to target `i`, indexed by node id.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.targets.len(), "target index {i} out of range");
        &self.dist[i * self.n..(i + 1) * self.n]
    }
}

/// Computes [`crate::distances_to`] for every target in one validated,
/// workspace-reusing (and, for large batches, parallel) sweep.
///
/// `in_csr` must be [`Csr::in_of`] of `graph`.
///
/// # Errors
///
/// Same conditions as [`crate::distances_to`].
pub fn batch_distances_to(
    graph: &Graph,
    in_csr: &Csr,
    weights: &[f64],
    targets: &[NodeId],
    par: Parallelism,
    ws: &mut RoutingWorkspace,
    out: &mut DistanceSet,
) -> Result<(), GraphError> {
    validate_weights(graph.edge_count(), weights)?;
    let n = graph.node_count();
    for &t in targets {
        if t.index() >= n {
            return Err(GraphError::NodeOutOfRange { node: t, nodes: n });
        }
    }
    out.n = n;
    out.targets.clear();
    out.targets.extend_from_slice(targets);
    out.dist.resize(targets.len() * n, 0.0);
    ws.ensure(targets.len(), n);

    let tasks = ws.slots[..targets.len()]
        .iter_mut()
        .zip(out.dist.chunks_mut(n))
        .zip(targets.iter());
    if par.decide(targets.len(), n + graph.edge_count()) {
        tasks
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|((scratch, dist), &t)| dijkstra_csr(in_csr, weights, t, dist, scratch));
    } else {
        for ((scratch, dist), &t) in tasks {
            dijkstra_csr(in_csr, weights, t, dist, scratch);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distances_to;

    fn near_tie(eps: f64) -> (Graph, Vec<f64>) {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        (g, vec![1.0, 1.0 + eps, 1.0, 1.0])
    }

    fn build_all(g: &Graph, w: &[f64], dests: &[NodeId], tol: f64, par: Parallelism) -> DagSet {
        let csr = Csr::in_of(g);
        let mut ws = RoutingWorkspace::new();
        let mut set = DagSet::new();
        build_dag_set(g, &csr, w, dests, tol, par, &mut ws, &mut set).unwrap();
        set
    }

    #[test]
    fn matches_legacy_on_near_tie() {
        let (g, w) = near_tie(0.1);
        for tol in [0.0, 0.3] {
            let dests: Vec<NodeId> = g.nodes().collect();
            let set = build_all(&g, &w, &dests, tol, Parallelism::Never);
            for (i, &t) in dests.iter().enumerate() {
                let legacy = ShortestPathDag::build(&g, &w, t, tol).unwrap();
                let view = set.dag(i);
                assert_eq!(view.distances(), legacy.distances(), "dist to {t}");
                for u in g.nodes() {
                    assert_eq!(view.successors(u), legacy.successors(u), "succ {u} -> {t}");
                    assert_eq!(view.path_count(u), legacy.path_count(u));
                }
                assert_eq!(
                    view.nodes_by_decreasing_distance(),
                    legacy.nodes_by_decreasing_distance()
                );
                for e in g.edge_ids() {
                    assert_eq!(view.contains_edge(e), legacy.contains_edge(e));
                }
            }
        }
    }

    #[test]
    fn parallel_schedule_is_bit_identical() {
        let (g, w) = near_tie(0.05);
        let dests: Vec<NodeId> = g.nodes().collect();
        let serial = build_all(&g, &w, &dests, 0.1, Parallelism::Never);
        let parallel = build_all(&g, &w, &dests, 0.1, Parallelism::Always);
        assert_eq!(serial.dist, parallel.dist);
        assert_eq!(serial.succ_off, parallel.succ_off);
        assert_eq!(serial.succ, parallel.succ);
        assert_eq!(serial.order, parallel.order);
        assert_eq!(serial.path_counts, parallel.path_counts);
    }

    #[test]
    fn workspace_reuse_across_calls() {
        let (g, w) = near_tie(0.0);
        let csr = Csr::in_of(&g);
        let mut ws = RoutingWorkspace::new();
        let mut set = DagSet::new();
        let dests: Vec<NodeId> = g.nodes().collect();
        for _ in 0..3 {
            build_dag_set(
                &g,
                &csr,
                &w,
                &dests,
                0.0,
                Parallelism::Auto,
                &mut ws,
                &mut set,
            )
            .unwrap();
            assert_eq!(set.len(), 4);
            assert_eq!(set.dag(3).distance(0.into()), 2.0);
        }
        // Shrinking the destination set reuses the same arenas.
        build_dag_set(
            &g,
            &csr,
            &w,
            &dests[..1],
            0.0,
            Parallelism::Auto,
            &mut ws,
            &mut set,
        )
        .unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn materialised_dag_matches_legacy() {
        let (g, w) = near_tie(0.1);
        let set = build_all(&g, &w, &[NodeId::new(3)], 0.3, Parallelism::Never);
        let owned = set.to_shortest_path_dag(0, &g);
        let legacy = ShortestPathDag::build(&g, &w, 3.into(), 0.3).unwrap();
        assert_eq!(owned.distances(), legacy.distances());
        for u in g.nodes() {
            assert_eq!(owned.successors(u), legacy.successors(u));
            assert_eq!(owned.predecessors(u), legacy.predecessors(u));
            assert_eq!(owned.path_count(u), legacy.path_count(u));
        }
        assert_eq!(
            owned.nodes_by_decreasing_distance(),
            legacy.nodes_by_decreasing_distance()
        );
    }

    #[test]
    fn rejects_bad_inputs_like_legacy() {
        let (g, w) = near_tie(0.0);
        let csr = Csr::in_of(&g);
        let mut ws = RoutingWorkspace::new();
        let mut set = DagSet::new();
        let run = |w: &[f64], dests: &[NodeId], tol: f64| {
            let mut ws2 = RoutingWorkspace::new();
            let mut set2 = DagSet::new();
            build_dag_set(
                &g,
                &csr,
                w,
                dests,
                tol,
                Parallelism::Auto,
                &mut ws2,
                &mut set2,
            )
        };
        assert!(matches!(
            run(&w[..2], &[NodeId::new(0)], 0.0),
            Err(GraphError::WeightCount { .. })
        ));
        assert!(matches!(
            run(&[1.0, -2.0, 1.0, 1.0], &[NodeId::new(0)], 0.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            run(&w, &[NodeId::new(17)], 0.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            run(&w, &[NodeId::new(0)], -0.5),
            Err(GraphError::InvalidWeight { .. })
        ));
        // Empty destination set is fine.
        build_dag_set(&g, &csr, &w, &[], 0.0, Parallelism::Auto, &mut ws, &mut set).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn batch_distances_match_single_calls() {
        let (g, w) = near_tie(0.2);
        let csr = Csr::in_of(&g);
        let mut ws = RoutingWorkspace::new();
        let mut set = DistanceSet::new();
        let targets: Vec<NodeId> = g.nodes().collect();
        for par in [Parallelism::Never, Parallelism::Always] {
            batch_distances_to(&g, &csr, &w, &targets, par, &mut ws, &mut set).unwrap();
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(set.row(i), distances_to(&g, &w, t).unwrap(), "target {t}");
            }
        }
    }

    #[test]
    fn slot_rebuild_matches_dense_build() {
        let (g, w) = near_tie(0.1);
        let csr = Csr::in_of(&g);
        let dests: Vec<NodeId> = g.nodes().collect();
        let mut ws = RoutingWorkspace::new();
        let mut set = DagSet::new();
        build_dag_set(
            &g,
            &csr,
            &w,
            &dests,
            0.0,
            Parallelism::Never,
            &mut ws,
            &mut set,
        )
        .unwrap();

        // Perturb one weight and rebuild only slots 1 and 3 in place.
        let mut w2 = w.clone();
        w2[1] = 0.25;
        let dirty = [false, true, false, true];
        rebuild_dag_set_slots(&g, &csr, &w2, &dirty, Parallelism::Never, &mut ws, &mut set)
            .unwrap();

        // Dense references under both weight vectors.
        let old = build_all(&g, &w, &dests, 0.0, Parallelism::Never);
        let new = build_all(&g, &w2, &dests, 0.0, Parallelism::Never);
        for (i, _) in dests.iter().enumerate() {
            let reference = if dirty[i] { new.dag(i) } else { old.dag(i) };
            let view = set.dag(i);
            assert_eq!(view.distances(), reference.distances(), "slot {i}");
            for u in g.nodes() {
                assert_eq!(view.successors(u), reference.successors(u));
                assert_eq!(view.path_count(u), reference.path_count(u));
            }
            assert_eq!(
                view.nodes_by_decreasing_distance(),
                reference.nodes_by_decreasing_distance()
            );
        }
    }

    #[test]
    fn edgeless_graph_is_handled() {
        let g = Graph::with_nodes(3);
        let set = build_all(&g, &[], &[NodeId::new(1)], 0.0, Parallelism::Never);
        let view = set.dag(0);
        assert_eq!(view.distance(1.into()), 0.0);
        assert!(!view.reaches_target(0.into()));
        assert_eq!(view.nodes_by_decreasing_distance(), &[NodeId::new(1)]);
        assert_eq!(view.path_count(1.into()), 1);
    }
}
