use std::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced by graph algorithms in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A weight slice did not have exactly one entry per edge.
    WeightCount {
        /// Number of edges in the graph.
        expected: usize,
        /// Length of the slice that was supplied.
        got: usize,
    },
    /// An edge weight was negative or not finite where the algorithm
    /// requires non-negative finite weights.
    InvalidWeight {
        /// The offending edge.
        edge: EdgeId,
        /// The offending weight value.
        weight: f64,
    },
    /// A negative-cost cycle was detected (Bellman–Ford).
    NegativeCycle,
    /// A node id referred to a node outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// An edge id referred to a link outside the graph.
    LinkOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges in the graph.
        edges: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::WeightCount { expected, got } => {
                write!(f, "expected {expected} edge weights, got {got}")
            }
            GraphError::InvalidWeight { edge, weight } => {
                write!(f, "edge {edge} has invalid weight {weight}")
            }
            GraphError::NegativeCycle => write!(f, "graph contains a negative-cost cycle"),
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for graph with {nodes} nodes")
            }
            GraphError::LinkOutOfRange { edge, edges } => {
                write!(f, "link {edge} out of range for graph with {edges} links")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Validates that `weights` matches the edge count of a graph with
/// `edge_count` edges and that every weight is finite and non-negative.
pub(crate) fn validate_weights(edge_count: usize, weights: &[f64]) -> Result<(), GraphError> {
    if weights.len() != edge_count {
        return Err(GraphError::WeightCount {
            expected: edge_count,
            got: weights.len(),
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::InvalidWeight {
                edge: EdgeId::new(i),
                weight: w,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GraphError::WeightCount {
                expected: 3,
                got: 2,
            },
            GraphError::InvalidWeight {
                edge: EdgeId::new(1),
                weight: -1.0,
            },
            GraphError::NegativeCycle,
            GraphError::NodeOutOfRange {
                node: NodeId::new(9),
                nodes: 4,
            },
            GraphError::LinkOutOfRange {
                edge: EdgeId::new(7),
                edges: 4,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn validate_rejects_wrong_length() {
        assert_eq!(
            validate_weights(2, &[1.0]),
            Err(GraphError::WeightCount {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn validate_rejects_negative_and_nan() {
        assert!(matches!(
            validate_weights(1, &[-0.5]),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            validate_weights(1, &[f64::NAN]),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            validate_weights(1, &[f64::INFINITY]),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn validate_accepts_zero() {
        assert_eq!(validate_weights(1, &[0.0]), Ok(()));
    }
}
