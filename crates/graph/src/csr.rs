//! Flat compressed-sparse-row adjacency.
//!
//! [`Graph`] stores adjacency as `Vec<Vec<EdgeId>>` — convenient to build
//! incrementally, but every node's edge list is its own heap allocation, so
//! batch algorithms that sweep the whole graph per destination (Dijkstra,
//! DAG construction) pay a pointer chase per node. [`Csr`] freezes the same
//! adjacency into two flat arrays: `offsets` (one entry per node, plus a
//! terminator) and `entries` (one `(edge, neighbor)` pair per edge, grouped
//! by node). Traversal becomes a contiguous slice scan, and the *other*
//! endpoint of each edge is pre-resolved so the inner Dijkstra loop touches
//! exactly one cache line stream.
//!
//! The entry order within each node's slice is the insertion order of the
//! underlying adjacency lists, so algorithms that iterate a `Csr` visit
//! edges in exactly the same sequence as ones that iterate
//! [`Graph::out_edges`]/[`Graph::in_edges`] — a prerequisite for the
//! batched routing engine's bit-identical-to-legacy guarantee.
//!
//! # Edge masking
//!
//! A `Csr` supports **topology deltas** without rebuilding: individual
//! edges can be disabled ([`Csr::set_links_enabled`]) and later
//! re-enabled, modelling link failures and repairs in place. While a mask
//! is active the live `offsets`/`entries` view is recompacted to the
//! enabled edges only — in the *original relative order*, so the masked
//! view is exactly the CSR a graph with those edges removed would freeze.
//! Algorithms that traverse only the CSR (Dijkstra) therefore produce
//! bit-identical results on the masked view and on the physically
//! degraded graph; algorithms that additionally iterate the full edge
//! list must skip masked edges via [`Csr::disabled_edges`]. The pristine
//! adjacency is retained, so a mask round trip (fail then restore) ends
//! with the identical enabled view it started from.

use crate::{EdgeId, Graph, NodeId};

/// The retained pristine adjacency plus the per-edge mask, present only
/// while at least one [`Csr::set_links_enabled`] call has run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CsrMask {
    /// Unmasked offsets, as originally frozen.
    offsets: Vec<usize>,
    /// Unmasked entries, as originally frozen.
    entries: Vec<(EdgeId, NodeId)>,
    /// `disabled[e]`: edge `e` is currently masked out.
    disabled: Vec<bool>,
    /// Number of `true` flags in `disabled`.
    masked: usize,
}

/// A frozen CSR view of one direction of a [`Graph`]'s adjacency.
///
/// Build once per graph (O(|N| + |J|)), traverse many times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `entries` for node `u`;
    /// length `node_count + 1`. With a mask active, covers the enabled
    /// edges only.
    offsets: Vec<usize>,
    /// `(edge, neighbor)` pairs grouped by node. For an out-CSR the
    /// neighbor is the edge's target; for an in-CSR it is the source.
    /// With a mask active, holds the enabled edges only, in the original
    /// relative order.
    entries: Vec<(EdgeId, NodeId)>,
    /// Mask bookkeeping; `None` until the first masking call.
    mask: Option<Box<CsrMask>>,
}

impl Csr {
    /// Builds the out-edge CSR: `neighbors(u)` lists `(e, target(e))` for
    /// every edge `e` leaving `u`, in [`Graph::out_edges`] order.
    pub fn out_of(graph: &Graph) -> Csr {
        Self::build(graph, |g, u| g.out_edges(u), |g, e| g.target(e))
    }

    /// Builds the in-edge CSR: `neighbors(v)` lists `(e, source(e))` for
    /// every edge `e` entering `v`, in [`Graph::in_edges`] order.
    ///
    /// This is the adjacency Dijkstra-to-a-destination traverses.
    pub fn in_of(graph: &Graph) -> Csr {
        Self::build(graph, |g, v| g.in_edges(v), |g, e| g.source(e))
    }

    fn build(
        graph: &Graph,
        list: impl Fn(&Graph, NodeId) -> &[EdgeId],
        other: impl Fn(&Graph, EdgeId) -> NodeId,
    ) -> Csr {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(graph.edge_count());
        offsets.push(0);
        for u in graph.nodes() {
            for &e in list(graph, u) {
                entries.push((e, other(graph, e)));
            }
            offsets.push(entries.len());
        }
        Csr {
            offsets,
            entries,
            mask: None,
        }
    }

    /// Number of nodes this CSR covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of `(edge, neighbor)` entries currently visible — the
    /// graph's edge count minus any masked edges.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of edges currently masked out by
    /// [`set_links_enabled`](Self::set_links_enabled).
    pub fn masked_count(&self) -> usize {
        self.mask.as_ref().map_or(0, |m| m.masked)
    }

    /// Whether edge `e` is currently enabled (not masked).
    ///
    /// # Panics
    ///
    /// Panics if a mask is active and `e` is out of range for the graph
    /// this CSR was frozen from.
    pub fn edge_enabled(&self, e: EdgeId) -> bool {
        self.mask.as_ref().is_none_or(|m| !m.disabled[e.index()])
    }

    /// The per-edge disabled flags, indexed by edge id — **empty** when no
    /// edge is currently masked, so callers can hoist the no-mask case to
    /// a single `is_empty` check per edge.
    pub fn disabled_edges(&self) -> &[bool] {
        match &self.mask {
            Some(m) if m.masked > 0 => &m.disabled,
            _ => &[],
        }
    }

    /// Disables (`enabled == false`) or re-enables (`enabled == true`) the
    /// given edges and recompacts the live view in O(|N| + |J|). Edges
    /// already in the requested state are left alone; returns the number
    /// of edges whose state actually changed. The enabled entries keep
    /// their original relative order, so the masked view is bit-for-bit
    /// the CSR of the graph with the masked edges removed.
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range for the graph this CSR was
    /// frozen from.
    pub fn set_links_enabled(&mut self, links: &[EdgeId], enabled: bool) -> usize {
        if self.mask.is_none() {
            if enabled || links.is_empty() {
                return 0;
            }
            self.mask = Some(Box::new(CsrMask {
                offsets: self.offsets.clone(),
                entries: self.entries.clone(),
                disabled: vec![false; self.entries.len()],
                masked: 0,
            }));
        }
        let mask = self.mask.as_mut().expect("mask just ensured");
        let mut changed = 0;
        for &e in links {
            assert!(
                e.index() < mask.disabled.len(),
                "edge {e} out of range for a CSR over {} edges",
                mask.disabled.len()
            );
            if mask.disabled[e.index()] == enabled {
                mask.disabled[e.index()] = !enabled;
                changed += 1;
            }
        }
        if changed == 0 {
            return 0;
        }
        if enabled {
            mask.masked -= changed;
        } else {
            mask.masked += changed;
        }
        // Recompact the live view from the pristine copy, reusing the
        // live vectors' capacity (no steady-state allocation).
        let n = mask.offsets.len() - 1;
        self.entries.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for u in 0..n {
            for &(e, v) in &mask.entries[mask.offsets[u]..mask.offsets[u + 1]] {
                if !mask.disabled[e.index()] {
                    self.entries.push((e, v));
                }
            }
            self.offsets.push(self.entries.len());
        }
        changed
    }

    /// The `(edge, neighbor)` pairs incident to `u` in this direction.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[(EdgeId, NodeId)] {
        &self.entries[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    #[test]
    fn out_csr_matches_adjacency_lists() {
        let g = diamond();
        let csr = Csr::out_of(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.entry_count(), 4);
        for u in g.nodes() {
            let flat: Vec<EdgeId> = csr.neighbors(u).iter().map(|&(e, _)| e).collect();
            assert_eq!(flat, g.out_edges(u), "out edges of {u}");
            for &(e, v) in csr.neighbors(u) {
                assert_eq!(v, g.target(e));
            }
        }
    }

    #[test]
    fn in_csr_matches_adjacency_lists() {
        let g = diamond();
        let csr = Csr::in_of(&g);
        for v in g.nodes() {
            let flat: Vec<EdgeId> = csr.neighbors(v).iter().map(|&(e, _)| e).collect();
            assert_eq!(flat, g.in_edges(v), "in edges of {v}");
            for &(e, u) in csr.neighbors(v) {
                assert_eq!(u, g.source(e));
            }
        }
    }

    #[test]
    fn parallel_edges_keep_both_entries() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        let csr = Csr::out_of(&g);
        assert_eq!(csr.neighbors(0.into()).len(), 2);
        assert_eq!(csr.neighbors(1.into()).len(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        let csr = Csr::out_of(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);
    }

    /// The masked view must equal the CSR of the graph with those edges
    /// physically removed — same entries, same relative order.
    fn degraded_reference(g: &Graph, removed: &[EdgeId]) -> Vec<Vec<(EdgeId, NodeId)>> {
        let csr = Csr::in_of(g);
        g.nodes()
            .map(|v| {
                csr.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|(e, _)| !removed.contains(e))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn mask_compacts_to_the_degraded_adjacency() {
        let g = diamond();
        let mut csr = Csr::in_of(&g);
        let removed = [EdgeId::new(1), EdgeId::new(2)];
        assert_eq!(csr.set_links_enabled(&removed, false), 2);
        assert_eq!(csr.masked_count(), 2);
        assert_eq!(csr.entry_count(), 2);
        assert!(!csr.edge_enabled(EdgeId::new(1)));
        assert!(csr.edge_enabled(EdgeId::new(0)));
        let reference = degraded_reference(&g, &removed);
        for v in g.nodes() {
            assert_eq!(csr.neighbors(v), reference[v.index()], "in edges of {v}");
        }
        assert_eq!(csr.disabled_edges(), &[false, true, true, false]);
    }

    #[test]
    fn mask_round_trip_restores_the_pristine_view() {
        let g = diamond();
        let pristine = Csr::in_of(&g);
        let mut csr = pristine.clone();
        csr.set_links_enabled(&[EdgeId::new(0), EdgeId::new(3)], false);
        assert_eq!(
            csr.set_links_enabled(&[EdgeId::new(0), EdgeId::new(3)], true),
            2
        );
        assert_eq!(csr.masked_count(), 0);
        assert_eq!(csr.entry_count(), pristine.entry_count());
        assert!(csr.disabled_edges().is_empty());
        for v in g.nodes() {
            assert_eq!(csr.neighbors(v), pristine.neighbors(v));
        }
    }

    #[test]
    fn mask_calls_are_idempotent() {
        let g = diamond();
        let mut csr = Csr::in_of(&g);
        assert_eq!(csr.set_links_enabled(&[EdgeId::new(2)], true), 0);
        assert_eq!(csr.set_links_enabled(&[EdgeId::new(2)], false), 1);
        assert_eq!(csr.set_links_enabled(&[EdgeId::new(2)], false), 0);
        assert_eq!(csr.masked_count(), 1);
        assert_eq!(csr.set_links_enabled(&[EdgeId::new(2)], true), 1);
        assert_eq!(csr.set_links_enabled(&[], false), 0);
        assert_eq!(csr.masked_count(), 0);
    }
}
