//! Flat compressed-sparse-row adjacency.
//!
//! [`Graph`] stores adjacency as `Vec<Vec<EdgeId>>` — convenient to build
//! incrementally, but every node's edge list is its own heap allocation, so
//! batch algorithms that sweep the whole graph per destination (Dijkstra,
//! DAG construction) pay a pointer chase per node. [`Csr`] freezes the same
//! adjacency into two flat arrays: `offsets` (one entry per node, plus a
//! terminator) and `entries` (one `(edge, neighbor)` pair per edge, grouped
//! by node). Traversal becomes a contiguous slice scan, and the *other*
//! endpoint of each edge is pre-resolved so the inner Dijkstra loop touches
//! exactly one cache line stream.
//!
//! The entry order within each node's slice is the insertion order of the
//! underlying adjacency lists, so algorithms that iterate a `Csr` visit
//! edges in exactly the same sequence as ones that iterate
//! [`Graph::out_edges`]/[`Graph::in_edges`] — a prerequisite for the
//! batched routing engine's bit-identical-to-legacy guarantee.

use crate::{EdgeId, Graph, NodeId};

/// A frozen CSR view of one direction of a [`Graph`]'s adjacency.
///
/// Build once per graph (O(|N| + |J|)), traverse many times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `entries` for node `u`;
    /// length `node_count + 1`.
    offsets: Vec<usize>,
    /// `(edge, neighbor)` pairs grouped by node. For an out-CSR the
    /// neighbor is the edge's target; for an in-CSR it is the source.
    entries: Vec<(EdgeId, NodeId)>,
}

impl Csr {
    /// Builds the out-edge CSR: `neighbors(u)` lists `(e, target(e))` for
    /// every edge `e` leaving `u`, in [`Graph::out_edges`] order.
    pub fn out_of(graph: &Graph) -> Csr {
        Self::build(graph, |g, u| g.out_edges(u), |g, e| g.target(e))
    }

    /// Builds the in-edge CSR: `neighbors(v)` lists `(e, source(e))` for
    /// every edge `e` entering `v`, in [`Graph::in_edges`] order.
    ///
    /// This is the adjacency Dijkstra-to-a-destination traverses.
    pub fn in_of(graph: &Graph) -> Csr {
        Self::build(graph, |g, v| g.in_edges(v), |g, e| g.source(e))
    }

    fn build(
        graph: &Graph,
        list: impl Fn(&Graph, NodeId) -> &[EdgeId],
        other: impl Fn(&Graph, EdgeId) -> NodeId,
    ) -> Csr {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(graph.edge_count());
        offsets.push(0);
        for u in graph.nodes() {
            for &e in list(graph, u) {
                entries.push((e, other(graph, e)));
            }
            offsets.push(entries.len());
        }
        Csr { offsets, entries }
    }

    /// Number of nodes this CSR covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of `(edge, neighbor)` entries (the graph's edge count).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The `(edge, neighbor)` pairs incident to `u` in this direction.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[(EdgeId, NodeId)] {
        &self.entries[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    #[test]
    fn out_csr_matches_adjacency_lists() {
        let g = diamond();
        let csr = Csr::out_of(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.entry_count(), 4);
        for u in g.nodes() {
            let flat: Vec<EdgeId> = csr.neighbors(u).iter().map(|&(e, _)| e).collect();
            assert_eq!(flat, g.out_edges(u), "out edges of {u}");
            for &(e, v) in csr.neighbors(u) {
                assert_eq!(v, g.target(e));
            }
        }
    }

    #[test]
    fn in_csr_matches_adjacency_lists() {
        let g = diamond();
        let csr = Csr::in_of(&g);
        for v in g.nodes() {
            let flat: Vec<EdgeId> = csr.neighbors(v).iter().map(|&(e, _)| e).collect();
            assert_eq!(flat, g.in_edges(v), "in edges of {v}");
            for &(e, u) in csr.neighbors(v) {
                assert_eq!(u, g.source(e));
            }
        }
    }

    #[test]
    fn parallel_edges_keep_both_entries() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        let csr = Csr::out_of(&g);
        assert_eq!(csr.neighbors(0.into()).len(), 2);
        assert_eq!(csr.neighbors(1.into()).len(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        let csr = Csr::out_of(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);
    }
}
