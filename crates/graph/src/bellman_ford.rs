//! Bellman–Ford shortest paths under possibly negative edge weights.
//!
//! The min-cost-flow solver in `spef-lp` works on residual graphs whose
//! reverse arcs carry negated costs; it needs one Bellman–Ford pass to
//! initialise Johnson potentials before switching to Dijkstra.

use crate::{EdgeId, Graph, GraphError, NodeId};

/// Computes shortest-path distances **from** `source` under weights that may
/// be negative. Unreachable nodes get `f64::INFINITY`.
///
/// # Errors
///
/// * [`GraphError::WeightCount`] if the weight slice length is wrong.
/// * [`GraphError::InvalidWeight`] if any weight is NaN or infinite.
/// * [`GraphError::NodeOutOfRange`] if `source` is not in the graph.
/// * [`GraphError::NegativeCycle`] if a negative-cost cycle is reachable
///   from `source`.
///
/// # Example
///
/// ```
/// use spef_graph::{Graph, bellman_ford};
///
/// # fn main() -> Result<(), spef_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// g.add_edge(0.into(), 2.into());
/// let d = bellman_ford::distances_from(&g, &[1.0, -3.0, 0.0], 0.into())?;
/// assert_eq!(d, vec![0.0, 1.0, -2.0]);
/// # Ok(())
/// # }
/// ```
pub fn distances_from(
    graph: &Graph,
    weights: &[f64],
    source: NodeId,
) -> Result<Vec<f64>, GraphError> {
    if weights.len() != graph.edge_count() {
        return Err(GraphError::WeightCount {
            expected: graph.edge_count(),
            got: weights.len(),
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() {
            return Err(GraphError::InvalidWeight {
                edge: EdgeId::new(i),
                weight: w,
            });
        }
    }
    if source.index() >= graph.node_count() {
        return Err(GraphError::NodeOutOfRange {
            node: source,
            nodes: graph.node_count(),
        });
    }

    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;

    // Standard |N|-1 relaxation rounds with early exit.
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for (e, u, v) in graph.edges() {
            let du = dist[u.index()];
            if du.is_finite() && du + weights[e.index()] < dist[v.index()] {
                dist[v.index()] = du + weights[e.index()];
                changed = true;
            }
        }
        if !changed {
            return Ok(dist);
        }
    }
    // One more round: any further improvement proves a negative cycle.
    for (e, u, v) in graph.edges() {
        let du = dist[u.index()];
        if du.is_finite() && du + weights[e.index()] < dist[v.index()] - 1e-12 {
            return Err(GraphError::NegativeCycle);
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_dijkstra_on_nonnegative_weights() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g.add_edge(3.into(), 4.into());
        let w = [2.0, 1.0, 1.0, 5.0, 0.5];
        let bf = distances_from(&g, &w, 0.into()).unwrap();
        let dj = crate::distances_from(&g, &w, 0.into()).unwrap();
        assert_eq!(bf, dj);
    }

    #[test]
    fn handles_negative_edges() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into()); // 4
        g.add_edge(0.into(), 2.into()); // 1
        g.add_edge(2.into(), 1.into()); // -2  -> dist(1) = -1
        g.add_edge(1.into(), 3.into()); // 1
        let d = distances_from(&g, &[4.0, 1.0, -2.0, 1.0], 0.into()).unwrap();
        assert_eq!(d, vec![0.0, -1.0, 1.0, 0.0]);
    }

    #[test]
    fn detects_negative_cycle() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(2.into(), 1.into());
        let res = distances_from(&g, &[1.0, -2.0, 1.0], 0.into());
        assert_eq!(res, Err(GraphError::NegativeCycle));
    }

    #[test]
    fn unreachable_negative_cycle_is_ignored() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        // Cycle 2 <-> 3 is not reachable from 0.
        g.add_edge(2.into(), 3.into());
        g.add_edge(3.into(), 2.into());
        let d = distances_from(&g, &[1.0, -2.0, 1.0], 0.into()).unwrap();
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], f64::INFINITY);
    }

    #[test]
    fn rejects_nan_weight() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        assert!(matches!(
            distances_from(&g, &[f64::NAN], 0.into()),
            Err(GraphError::InvalidWeight { .. })
        ));
    }
}
