//! Reachability and connectivity checks.
//!
//! Topology generators must produce networks where every demand pair is
//! connected; these helpers validate that.

use crate::{Graph, NodeId};

/// Nodes reachable from `source` following edge directions (including
/// `source` itself), as a boolean mask indexed by node id.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn reachable_from(graph: &Graph, source: NodeId) -> Vec<bool> {
    assert!(source.index() < graph.node_count(), "source out of range");
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![source];
    seen[source.index()] = true;
    while let Some(u) = stack.pop() {
        for &e in graph.out_edges(u) {
            let v = graph.target(e);
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Nodes from which `target` is reachable (including `target` itself), as a
/// boolean mask indexed by node id.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn reaches(graph: &Graph, target: NodeId) -> Vec<bool> {
    assert!(target.index() < graph.node_count(), "target out of range");
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![target];
    seen[target.index()] = true;
    while let Some(u) = stack.pop() {
        for &e in graph.in_edges(u) {
            let v = graph.source(e);
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Returns `true` if every node can reach every other node following edge
/// directions (strong connectivity).
///
/// An empty graph is vacuously strongly connected.
pub fn is_strongly_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    let origin = NodeId::new(0);
    reachable_from(graph, origin).iter().all(|&r| r) && reaches(graph, origin).iter().all(|&r| r)
}

/// Returns `true` if the graph is connected when edge directions are ignored.
///
/// An empty graph is vacuously connected.
pub fn is_weakly_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![NodeId::new(0)];
    seen[0] = true;
    let mut visited = 1usize;
    while let Some(u) = stack.pop() {
        let forward = graph.out_edges(u).iter().map(|&e| graph.target(e));
        let backward = graph.in_edges(u).iter().map(|&e| graph.source(e));
        for v in forward.chain(backward) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                visited += 1;
                stack.push(v);
            }
        }
    }
    visited == graph.node_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g
    }

    #[test]
    fn reachable_follows_direction() {
        let g = path_graph();
        assert_eq!(reachable_from(&g, 0.into()), vec![true, true, true]);
        assert_eq!(reachable_from(&g, 2.into()), vec![false, false, true]);
    }

    #[test]
    fn reaches_follows_reverse_direction() {
        let g = path_graph();
        assert_eq!(reaches(&g, 2.into()), vec![true, true, true]);
        assert_eq!(reaches(&g, 0.into()), vec![true, false, false]);
    }

    #[test]
    fn directed_path_is_weakly_but_not_strongly_connected() {
        let g = path_graph();
        assert!(is_weakly_connected(&g));
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn cycle_is_strongly_connected() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(2.into(), 0.into());
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn bidirected_networks_are_strongly_connected() {
        // Every evaluation network in the paper has links in both directions.
        let mut g = Graph::with_nodes(3);
        for (u, v) in [(0usize, 1usize), (1, 2)] {
            g.add_edge(u.into(), v.into());
            g.add_edge(v.into(), u.into());
        }
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn isolated_node_breaks_connectivity() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 0.into());
        assert!(!is_weakly_connected(&g));
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new();
        assert!(is_weakly_connected(&g));
        assert!(is_strongly_connected(&g));
    }
}
