//! Property-based tests for the graph substrate.
//!
//! Random strongly-connected-ish digraphs with random weights; verify the
//! Bellman optimality conditions, DAG structural invariants, and agreement
//! between Dijkstra and Bellman–Ford.

use proptest::prelude::*;
use spef_graph::{bellman_ford, distances_from, distances_to, Graph, NodeId, ShortestPathDag};

/// Strategy: a random digraph of `n` nodes over a Hamiltonian backbone cycle
/// (guaranteeing strong connectivity) plus `extra` random chords, with
/// weights in [0, 10].
fn random_network() -> impl Strategy<Value = (Graph, Vec<f64>)> {
    (3usize..12).prop_flat_map(|n| {
        let extra = 0usize..(n * 2);
        (
            Just(n),
            extra.prop_flat_map(move |k| proptest::collection::vec((0..n, 0..n), k..=k)),
            proptest::collection::vec(0.0f64..10.0, n + n * 2),
        )
            .prop_map(|(n, chords, weights)| {
                let mut g = Graph::with_nodes(n);
                for i in 0..n {
                    g.add_edge(i.into(), ((i + 1) % n).into());
                }
                for (u, v) in chords {
                    if u != v {
                        g.add_edge(u.into(), v.into());
                    }
                }
                let w = weights[..g.edge_count()].to_vec();
                (g, w)
            })
    })
}

proptest! {
    #[test]
    fn dijkstra_satisfies_bellman_equations((g, w) in random_network()) {
        let dist = distances_from(&g, &w, NodeId::new(0)).unwrap();
        // Feasibility: d(v) <= d(u) + w(u,v) for every edge.
        for (e, u, v) in g.edges() {
            prop_assert!(dist[v.index()] <= dist[u.index()] + w[e.index()] + 1e-9);
        }
        // Tightness: every finite d(v), v != source, is achieved by some edge.
        for v in g.nodes() {
            if v.index() == 0 || !dist[v.index()].is_finite() { continue; }
            let achieved = g.in_edges(v).iter().any(|&e| {
                let u = g.source(e);
                (dist[u.index()] + w[e.index()] - dist[v.index()]).abs() < 1e-9
            });
            prop_assert!(achieved, "distance to {v} not achieved by any edge");
        }
    }

    #[test]
    fn dijkstra_agrees_with_bellman_ford((g, w) in random_network()) {
        let dj = distances_from(&g, &w, NodeId::new(0)).unwrap();
        let bf = bellman_ford::distances_from(&g, &w, NodeId::new(0)).unwrap();
        for (a, b) in dj.iter().zip(&bf) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn reverse_distances_agree_with_reversed_graph((g, w) in random_network()) {
        let t = NodeId::new(g.node_count() - 1);
        let direct = distances_to(&g, &w, t).unwrap();
        let via_rev = distances_from(&g.reverse(), &w, t).unwrap();
        for (a, b) in direct.iter().zip(&via_rev) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dag_is_acyclic_and_distance_decreasing(
        (g, w) in random_network(),
        tol in 0.0f64..0.5,
    ) {
        let t = NodeId::new(0);
        let dag = ShortestPathDag::build(&g, &w, t, tol).unwrap();
        for (e, u, v) in g.edges() {
            if dag.contains_edge(e) {
                // Strict decrease => acyclic.
                prop_assert!(dag.distance(v) < dag.distance(u));
                // Slack bounded by tolerance.
                let slack = w[e.index()] + dag.distance(v) - dag.distance(u);
                prop_assert!(slack <= tol + 1e-9);
            }
        }
    }

    #[test]
    fn every_reachable_node_has_a_dag_successor((g, w) in random_network()) {
        let t = NodeId::new(0);
        let dag = ShortestPathDag::build(&g, &w, t, 0.0).unwrap();
        for u in g.nodes() {
            if u != t && dag.reaches_target(u) {
                prop_assert!(!dag.successors(u).is_empty());
                prop_assert!(dag.path_count(u) >= 1);
            }
        }
    }

    #[test]
    fn path_counts_compose_over_successors((g, w) in random_network()) {
        let t = NodeId::new(0);
        let dag = ShortestPathDag::build(&g, &w, t, 0.0).unwrap();
        for u in g.nodes() {
            if u == t || !dag.reaches_target(u) { continue; }
            let sum: u64 = dag
                .successors(u)
                .iter()
                .map(|&e| dag.path_count(g.target(e)))
                .sum();
            prop_assert_eq!(dag.path_count(u), sum);
        }
    }

    #[test]
    fn divergence_sums_to_zero((g, _w) in random_network(), flows in proptest::collection::vec(0.0f64..5.0, 0..64)) {
        let mut f = vec![0.0; g.edge_count()];
        for (i, x) in flows.iter().enumerate() {
            if i < f.len() { f[i] = *x; }
        }
        let div = g.divergence(&f);
        let total: f64 = div.iter().sum();
        prop_assert!(total.abs() < 1e-9);
    }
}
