//! Property tests: the CSR batched engine is **bit-identical** to the
//! legacy per-destination path.
//!
//! [`ShortestPathDag::build`] is kept as an independent reference
//! implementation (plain Dijkstra over `Vec<Vec<EdgeId>>` adjacency, fresh
//! allocations per call); [`build_dag_set`] is the arena-reusing CSR
//! engine. On random graphs and weights, every observable — distances,
//! DAG edge sets, successor order, processing order, path counts — must
//! agree exactly (`==` on floats, not approximately), and must not depend
//! on the parallel schedule.

use proptest::prelude::*;
use spef_graph::{
    batch_distances_to, build_dag_set, distances_to, Csr, DagSet, DistanceSet, Graph, NodeId,
    Parallelism, RoutingWorkspace, ShortestPathDag,
};

/// Strategy: a strongly connected digraph (Hamiltonian backbone plus
/// random chords, possibly parallel edges) with weights in [0, 10].
fn random_network() -> impl Strategy<Value = (Graph, Vec<f64>)> {
    (3usize..14).prop_flat_map(|n| {
        let extra = 0usize..(n * 3);
        (
            Just(n),
            extra.prop_flat_map(move |k| proptest::collection::vec((0..n, 0..n), k..=k)),
            proptest::collection::vec(0.0f64..10.0, n + n * 3),
        )
            .prop_map(|(n, chords, weights)| {
                let mut g = Graph::with_nodes(n);
                for i in 0..n {
                    g.add_edge(i.into(), ((i + 1) % n).into());
                }
                for (u, v) in chords {
                    if u != v {
                        g.add_edge(u.into(), v.into());
                    }
                }
                let w = weights[..g.edge_count()].to_vec();
                (g, w)
            })
    })
}

fn build_batched(g: &Graph, w: &[f64], dests: &[NodeId], tol: f64, par: Parallelism) -> DagSet {
    let csr = Csr::in_of(g);
    let mut ws = RoutingWorkspace::new();
    let mut set = DagSet::new();
    build_dag_set(g, &csr, w, dests, tol, par, &mut ws, &mut set).unwrap();
    set
}

proptest! {
    /// Engine DAGs equal legacy DAGs on every observable, for exact and
    /// positive tolerances.
    #[test]
    fn dag_set_is_bit_identical_to_legacy(
        (g, w) in random_network(),
        tol in prop_oneof![Just(0.0f64), 0.0f64..2.0],
    ) {
        let dests: Vec<NodeId> = g.nodes().collect();
        let set = build_batched(&g, &w, &dests, tol, Parallelism::Never);
        for (i, &t) in dests.iter().enumerate() {
            let legacy = ShortestPathDag::build(&g, &w, t, tol).unwrap();
            let view = set.dag(i);
            // Exact float equality: same relaxation order, same sums.
            prop_assert_eq!(view.distances(), legacy.distances());
            prop_assert_eq!(
                view.nodes_by_decreasing_distance(),
                legacy.nodes_by_decreasing_distance()
            );
            for u in g.nodes() {
                prop_assert_eq!(view.successors(u), legacy.successors(u));
                prop_assert_eq!(view.path_count(u), legacy.path_count(u));
            }
            for e in g.edge_ids() {
                prop_assert_eq!(view.contains_edge(e), legacy.contains_edge(e));
            }
        }
    }

    /// The materialised owned DAGs (what `spef_core::build_dags` returns)
    /// also match, including predecessor lists.
    #[test]
    fn materialised_dags_match_legacy((g, w) in random_network()) {
        let dests: Vec<NodeId> = g.nodes().collect();
        let set = build_batched(&g, &w, &dests, 0.0, Parallelism::Auto);
        for (i, &t) in dests.iter().enumerate() {
            let owned = set.to_shortest_path_dag(i, &g);
            let legacy = ShortestPathDag::build(&g, &w, t, 0.0).unwrap();
            prop_assert_eq!(owned.distances(), legacy.distances());
            for u in g.nodes() {
                prop_assert_eq!(owned.successors(u), legacy.successors(u));
                prop_assert_eq!(owned.predecessors(u), legacy.predecessors(u));
            }
        }
    }

    /// Results are independent of the parallel schedule: forcing the
    /// threaded fan-out produces the very same arena contents as the
    /// sequential build.
    #[test]
    fn schedule_independence((g, w) in random_network(), tol in 0.0f64..1.0) {
        let dests: Vec<NodeId> = g.nodes().collect();
        let serial = build_batched(&g, &w, &dests, tol, Parallelism::Never);
        let parallel = build_batched(&g, &w, &dests, tol, Parallelism::Always);
        for i in 0..dests.len() {
            let (a, b) = (serial.dag(i), parallel.dag(i));
            prop_assert_eq!(a.distances(), b.distances());
            prop_assert_eq!(
                a.nodes_by_decreasing_distance(),
                b.nodes_by_decreasing_distance()
            );
            for u in g.nodes() {
                prop_assert_eq!(a.successors(u), b.successors(u));
                prop_assert_eq!(a.path_count(u), b.path_count(u));
            }
        }
    }

    /// Batched distances equal per-call `distances_to` exactly.
    #[test]
    fn batched_distances_are_bit_identical((g, w) in random_network()) {
        let targets: Vec<NodeId> = g.nodes().collect();
        let csr = Csr::in_of(&g);
        let mut ws = RoutingWorkspace::new();
        let mut set = DistanceSet::new();
        batch_distances_to(&g, &csr, &w, &targets, Parallelism::Auto, &mut ws, &mut set)
            .unwrap();
        for (i, &t) in targets.iter().enumerate() {
            prop_assert_eq!(set.row(i), distances_to(&g, &w, t).unwrap().as_slice());
        }
    }

    /// Arena reuse leaves no residue: rebuilding with different weights in
    /// the same workspace/set equals a fresh build.
    #[test]
    fn workspace_reuse_has_no_residue(
        (g, w) in random_network(),
        scale in 0.1f64..3.0,
    ) {
        let dests: Vec<NodeId> = g.nodes().collect();
        let w2: Vec<f64> = w.iter().map(|x| x * scale).collect();
        let csr = Csr::in_of(&g);
        let mut ws = RoutingWorkspace::new();
        let mut set = DagSet::new();
        // Warm the arenas with the first weights, then rebuild with the
        // second and compare to an entirely fresh engine.
        build_dag_set(&g, &csr, &w, &dests, 0.0, Parallelism::Never, &mut ws, &mut set)
            .unwrap();
        build_dag_set(&g, &csr, &w2, &dests, 0.0, Parallelism::Never, &mut ws, &mut set)
            .unwrap();
        let fresh = build_batched(&g, &w2, &dests, 0.0, Parallelism::Never);
        for i in 0..dests.len() {
            let (a, b) = (set.dag(i), fresh.dag(i));
            prop_assert_eq!(a.distances(), b.distances());
            for u in g.nodes() {
                prop_assert_eq!(a.successors(u), b.successors(u));
            }
        }
    }
}

/// The threaded code path really runs multi-threaded when worker threads
/// are available: force a thread count through the shim's env knob in a
/// dedicated process-wide test and re-check equivalence. (On single-core
/// CI this is the only way the scoped-thread fan-out executes.)
#[test]
fn parallel_fanout_with_forced_threads_matches_serial() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let mut g = Graph::with_nodes(40);
    for i in 0..40usize {
        g.add_edge(i.into(), ((i + 1) % 40).into());
        g.add_edge(i.into(), ((i + 7) % 40).into());
        g.add_edge(((i + 3) % 40).into(), i.into());
    }
    let w: Vec<f64> = (0..g.edge_count())
        .map(|e| 0.5 + ((e * 37) % 11) as f64)
        .collect();
    let dests: Vec<NodeId> = g.nodes().collect();
    let serial = build_batched(&g, &w, &dests, 0.25, Parallelism::Never);
    let parallel = build_batched(&g, &w, &dests, 0.25, Parallelism::Always);
    for i in 0..dests.len() {
        let (a, b) = (serial.dag(i), parallel.dag(i));
        assert_eq!(a.distances(), b.distances());
        assert_eq!(
            a.nodes_by_decreasing_distance(),
            b.nodes_by_decreasing_distance()
        );
        for u in g.nodes() {
            assert_eq!(a.successors(u), b.successors(u));
            assert_eq!(a.path_count(u), b.path_count(u));
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}
