//! Facade crate for the SPEF workspace.
//!
//! Re-exports every member crate under one roof so downstream users (and the
//! workspace-level integration tests and examples) can depend on a single
//! package. The algorithms live in the member crates:
//!
//! * [`graph`](spef_graph) — directed multigraph, Dijkstra, shortest-path DAGs
//! * [`lp`](spef_lp) — simplex with duals, min-cost flow, max-flow
//! * [`topology`](spef_topology) — evaluation networks and traffic matrices
//! * [`core`](spef_core) — the SPEF algorithms (first + second weights)
//! * [`baselines`](spef_baselines) — OSPF/InvCap, Fortz–Thorup, PEFT, min-MLU
//! * [`netsim`](spef_netsim) — packet-level discrete-event simulator
//! * [`experiments`](spef_experiments) — paper artifacts and the scenario-sweep harness

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spef_baselines as baselines;
pub use spef_core as core;
pub use spef_experiments as experiments;
pub use spef_graph as graph;
pub use spef_lp as lp;
pub use spef_netsim as netsim;
pub use spef_topology as topology;
