//! Smoke/shape tests over the full experiment harness: every experiment
//! id runs at `Quality::Quick`, produces its artifacts, and respects basic
//! cross-experiment consistency.

use spef_experiments::{run_experiment, Quality, ALL_EXPERIMENTS, EXTRA_EXPERIMENTS};

#[test]
fn every_experiment_runs_and_produces_artifacts() {
    for id in ALL_EXPERIMENTS.into_iter().chain(EXTRA_EXPERIMENTS) {
        let result = run_experiment(id, Quality::Quick)
            .unwrap_or_else(|e| panic!("experiment {id} failed: {e}"));
        assert_eq!(result.id, id);
        assert!(!result.tables.is_empty(), "{id}: no tables");
        for t in &result.tables {
            assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
        }
        for csv in &result.csvs {
            assert!(csv.content.lines().count() >= 2, "{id}: empty csv");
            assert!(csv.name.ends_with(".csv"));
        }
        // Tables render without panicking and non-trivially.
        let rendered = result.to_string();
        assert!(rendered.len() > 40, "{id}: suspiciously short rendering");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    let err = run_experiment("fig99", Quality::Quick).unwrap_err();
    assert!(err.contains("unknown experiment"));
    assert!(err.contains("fig99"));
}

#[test]
fn csv_artifacts_write_to_disk() {
    let dir = std::env::temp_dir().join("spef_repro_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let result = run_experiment("fig2", Quality::Quick).unwrap();
    result.write_csvs(&dir).unwrap();
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(entries.len(), result.csvs.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn table1_and_fig3_agree_at_beta_one() {
    // The β = 1 column of TABLE I and the β = 1 sample of Fig. 3 are the
    // same computation through two different harness paths.
    let t1 = run_experiment("table1", Quality::Quick).unwrap();
    let f3 = run_experiment("fig3", Quality::Quick).unwrap();
    let t1_w13: f64 = t1.tables[0].rows[0][3].parse().unwrap();
    let beta1_row: Vec<f64> = f3.csvs[0]
        .content
        .lines()
        .skip(1)
        .map(|l| {
            l.split(',')
                .map(|c| c.parse::<f64>().unwrap())
                .collect::<Vec<_>>()
        })
        .find(|row| (row[0] - 1.0).abs() < 1e-9)
        .expect("beta = 1 sampled");
    assert!(
        (t1_w13 - beta1_row[1]).abs() < 0.05 * beta1_row[1],
        "w(1,3): table1 {t1_w13} vs fig3 {}",
        beta1_row[1]
    );
}

#[test]
fn fig6_and_fig7_share_the_spef_solutions() {
    // Fig. 7's first weights must be consistent with Fig. 6's utilizations:
    // under β = 1 the weight is 1/(c−f) = 1/(c(1−u)).
    let f6 = run_experiment("fig6", Quality::Quick).unwrap();
    let f7 = run_experiment("fig7", Quality::Quick).unwrap();
    let u_rows: Vec<Vec<f64>> = f6.csvs[0]
        .content
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect();
    let w_rows: Vec<Vec<f64>> = f7.csvs[0]
        .content
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect();
    for (u_row, w_row) in u_rows.iter().zip(&w_rows) {
        let u = u_row[3]; // SPEF1 utilization
        let w = w_row[2]; // SPEF1 first weight
        let expected = 1.0 / (5.0 * (1.0 - u));
        // The utilizations are the *realised* flows, the weights come from
        // the TE optimum — equal up to the NEM realisation tolerance.
        assert!(
            (w - expected).abs() < 0.15 * expected,
            "link {}: w {w} vs 1/(c-f) {expected}",
            u_row[0]
        );
    }
}
