//! Baseline-vs-SPEF integration tests: the orderings every figure of the
//! paper relies on.

use spef_baselines::fortz_thorup::{FtConfig, FtCost, FtOutcome};
use spef_baselines::mlu_lp::MluSolution;
use spef_baselines::ospf::{invcap_weights, OspfRouting};
use spef_baselines::peft::PeftRouting;
use spef_core::{FrankWolfeConfig, Objective, SpefConfig, TeInstance, TeSolver};
use spef_topology::{standard, TrafficMatrix};

/// The headline ordering: SPEF's utility dominates OSPF's on every
/// network/load the paper sweeps (Fig. 10's invariant).
#[test]
fn spef_utility_dominates_ospf_everywhere() {
    let cases: Vec<(spef_topology::Network, TrafficMatrix)> = vec![
        {
            let n = standard::abilene();
            let t = TrafficMatrix::fortz_thorup(&n, 1);
            (n, t)
        },
        {
            let n = standard::cernet2();
            let t = TrafficMatrix::gravity(&n, 1.0, 2);
            (n, t)
        },
        {
            let n = standard::fig4();
            let t = standard::fig4_demands();
            (n, t)
        },
    ];
    for (net, shape) in cases {
        for load_frac in [0.4, 0.7] {
            // Express loads relative to a conservative feasible point.
            let tm = shape.scaled_to_network_load(&net, load_frac * 0.1).clone();
            let obj = Objective::proportional(net.link_count());
            let spef = SpefConfig::default()
                .solve(TeInstance::new(&net, &tm, &obj))
                .unwrap();
            let ospf = OspfRouting::route(&net, &tm).unwrap();
            let su = spef.normalized_utility(&net);
            let ou = ospf.normalized_utility(&net);
            assert!(
                su >= ou - 1e-6,
                "{} at {load_frac}: SPEF {su} < OSPF {ou}",
                net.name()
            );
        }
    }
}

/// Min-MLU LP lower-bounds every routing scheme's MLU.
#[test]
fn mlu_lp_lower_bounds_all_schemes() {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let lp = MluSolution::solve(&net, &tm).unwrap();

    let ospf = OspfRouting::route(&net, &tm).unwrap();
    assert!(lp.mlu <= ospf.max_link_utilization(&net) + 1e-9);

    let obj = Objective::proportional(net.link_count());
    let spef = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    assert!(lp.mlu <= spef.max_link_utilization(&net) + 1e-3);

    let te = FrankWolfeConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let peft = PeftRouting::route(&net, &tm, &te.weights).unwrap();
    assert!(lp.mlu <= peft.max_link_utilization(&net) + 1e-6);
}

/// The FT local search only improves on its InvCap start, and the optimal
/// TE flows cost no more than any weight-driven ECMP routing under the FT
/// metric's own convexity... at least on the congested Fig. 4 case where
/// the orderings are strict.
#[test]
fn ft_search_improves_and_relieves_congestion() {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let invcap = OspfRouting::route(&net, &tm).unwrap();
    let invcap_cost = FtCost.total_cost(&net, invcap.flows().aggregate());
    let out = FtOutcome::local_search(
        &net,
        &tm,
        &FtConfig {
            max_weight: 10,
            max_evaluations: 1500,
            restarts: 1,
            seed: 5,
            ..FtConfig::default()
        },
    )
    .unwrap();
    assert!(out.cost < invcap_cost);
    assert!(out.routing.max_link_utilization(&net) <= 1.0 + 1e-9);
    // The convex-optimal flow is cheaper than any ECMP-realisable setting
    // found by the search (the relaxation bound).
    let obj = Objective::proportional(net.link_count());
    let te = FrankWolfeConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let te_cost = FtCost.total_cost(&net, te.flows.aggregate());
    assert!(
        te_cost <= out.cost * 1.05,
        "TE {te_cost} vs FT {}",
        out.cost
    );
}

/// PEFT under the optimal weights is feasible but (weakly) worse-balanced
/// than SPEF on the paper's simulation scenario.
#[test]
fn peft_balances_worse_than_spef_on_fig4() {
    let net = standard::fig4();
    let tm = standard::table4_simple_demands();
    let obj = Objective::proportional(net.link_count());
    let spef = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let te = spef.te_solution();
    let peft_weights = spef_core::weights::integerize(&te.weights, &te.spare).unwrap();
    let peft = PeftRouting::route(&net, &tm, &peft_weights).unwrap();
    assert!(
        spef.max_link_utilization(&net) <= peft.max_link_utilization(&net) + 1e-6,
        "SPEF {} vs PEFT {}",
        spef.max_link_utilization(&net),
        peft.max_link_utilization(&net)
    );
}

/// InvCap weights follow Cisco's rule exactly and OSPF's routing is
/// invariant to their positive rescaling.
#[test]
fn ospf_routing_is_scale_invariant() {
    let net = standard::cernet2();
    let tm = TrafficMatrix::gravity(&net, 1.0, 9).scaled_to_network_load(&net, 0.05);
    let w = invcap_weights(&net);
    let a = OspfRouting::route_with_weights(&net, &tm, &w).unwrap();
    let scaled: Vec<f64> = w.iter().map(|x| 17.0 * x).collect();
    let b = OspfRouting::route_with_weights(&net, &tm, &scaled).unwrap();
    for (fa, fb) in a.flows().aggregate().iter().zip(b.flows().aggregate()) {
        assert!((fa - fb).abs() < 1e-9);
    }
}

/// OSPF keeps routing when overloaded (MLU > 1) — the regime where the
/// paper's Fig. 10 stops plotting it but SPEF "still works".
#[test]
fn ospf_overload_is_reported_not_crashed() {
    let net = standard::fig4();
    let tm = standard::fig4_demands(); // overloads link 1 at 1.6
    let ospf = OspfRouting::route(&net, &tm).unwrap();
    assert!(ospf.max_link_utilization(&net) > 1.0);
    assert_eq!(ospf.normalized_utility(&net), f64::NEG_INFINITY);
}
