//! Simulator-vs-analytic validation: the discrete-event simulator's mean
//! link loads must converge to the flow solution its FIB encodes — the
//! property that makes the Fig. 11 substitution for SSFnet sound.

use spef_baselines::ospf::OspfRouting;
use spef_baselines::peft::PeftRouting;
use spef_core::{Objective, SpefConfig, TeInstance, TeSolver};
use spef_netsim::{simulate, SimConfig};
use spef_topology::standard;

fn relative_error(measured_bps: &[f64], analytic_units: &[f64], unit: f64) -> f64 {
    let peak = analytic_units.iter().cloned().fold(0.0, f64::max) * unit;
    measured_bps
        .iter()
        .zip(analytic_units)
        .map(|(m, a)| (m - a * unit).abs() / peak)
        .fold(0.0, f64::max)
}

#[test]
fn sim_loads_match_spef_flows_on_fig4() {
    let net = standard::fig4();
    let tm = standard::table4_simple_demands();
    let obj = Objective::proportional(net.link_count());
    let routing = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let cfg = SimConfig {
        duration: 120.0,
        warmup: 10.0,
        capacity_to_bps: 1e6,
        demand_to_bps: 1e6,
        seed: 101,
        ..SimConfig::default()
    };
    let report = simulate(&net, &tm, routing.forwarding_table(), &cfg).unwrap();
    let err = relative_error(&report.mean_link_load_bps, routing.flows().aggregate(), 1e6);
    assert!(err < 0.05, "max relative link-load error {err}");
    // Essentially lossless at SPEF's operating point.
    assert!(report.dropped_packets * 50 < report.generated_packets);
}

#[test]
fn sim_loads_match_peft_flows_on_fig4() {
    // Validate at an uncongested operating point: once any link
    // saturates, drops make every downstream analytic comparison
    // meaningless (that congested regime is covered by the OSPF test
    // below).
    let net = standard::fig4();
    let tm = standard::table4_simple_demands().scaled(0.5);
    let w = vec![1.0; net.link_count()];
    let peft = PeftRouting::route(&net, &tm, &w).unwrap();
    assert!(
        peft.max_link_utilization(&net) < 0.95,
        "operating point must be uncongested for this validation"
    );
    let cfg = SimConfig {
        duration: 120.0,
        warmup: 10.0,
        capacity_to_bps: 1e6,
        demand_to_bps: 1e6,
        seed: 102,
        ..SimConfig::default()
    };
    let report = simulate(&net, &tm, peft.forwarding_table(), &cfg).unwrap();
    let err = relative_error(&report.mean_link_load_bps, peft.flows().aggregate(), 1e6);
    assert!(err < 0.05, "max relative link-load error {err}");
    assert_eq!(report.dropped_packets, 0);
}

#[test]
fn sim_shows_ospf_congestion_collapse() {
    // OSPF offers 8 Mb/s to a 5 Mb/s link: the simulator must show ~37%
    // loss on that demand set and cap the hot link at capacity.
    let net = standard::fig4();
    let tm = standard::table4_simple_demands();
    let ospf = OspfRouting::route(&net, &tm).unwrap();
    let cfg = SimConfig {
        duration: 60.0,
        warmup: 5.0,
        capacity_to_bps: 1e6,
        demand_to_bps: 1e6,
        seed: 103,
        ..SimConfig::default()
    };
    let report = simulate(&net, &tm, ospf.forwarding_table(), &cfg).unwrap();
    assert!(report.dropped_packets > 0);
    let loss = report.dropped_packets as f64 / report.generated_packets as f64;
    assert!(loss > 0.10, "loss {loss}");
    // The overloaded link (edge 0) is pinned at its 5 Mb/s capacity.
    assert!(report.mean_link_load_bps[0] <= 5.05e6);
    assert!(report.mean_link_load_bps[0] >= 4.8e6);
}

#[test]
fn spef_beats_ospf_on_delay_and_loss_in_simulation() {
    let net = standard::fig4();
    let tm = standard::table4_simple_demands();
    let obj = Objective::proportional(net.link_count());
    let spef = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let ospf = OspfRouting::route(&net, &tm).unwrap();
    let cfg = SimConfig {
        duration: 60.0,
        warmup: 5.0,
        capacity_to_bps: 1e6,
        demand_to_bps: 1e6,
        seed: 104,
        ..SimConfig::default()
    };
    let spef_r = simulate(&net, &tm, spef.forwarding_table(), &cfg).unwrap();
    let ospf_r = simulate(&net, &tm, ospf.forwarding_table(), &cfg).unwrap();
    assert!(spef_r.dropped_packets < ospf_r.dropped_packets / 10);
    assert!(spef_r.delivered_packets > ospf_r.delivered_packets);
    // OSPF's overloaded queue dominates its delay.
    assert!(spef_r.mean_delay < ospf_r.mean_delay);
}

#[test]
fn cernet2_simulation_scales_to_gbps() {
    // The Fig. 11(b) configuration: Gb/s capacities, Gb demands.
    let net = standard::cernet2();
    let tm = standard::table4_cernet2_demands().scaled(0.5);
    let obj = Objective::proportional(net.link_count());
    let spef = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let cfg = SimConfig {
        duration: 3.0,
        warmup: 0.5,
        capacity_to_bps: 1e9,
        demand_to_bps: 1e9,
        seed: 105,
        ..SimConfig::default()
    };
    let report = simulate(&net, &tm, spef.forwarding_table(), &cfg).unwrap();
    assert!(report.delivered_packets > 100_000);
    let err = relative_error(&report.mean_link_load_bps, spef.flows().aggregate(), 1e9);
    assert!(err < 0.08, "max relative link-load error {err}");
}
