//! Cross-crate integration tests asserting the paper's theorems
//! numerically.

use proptest::prelude::*;
use spef_core::{
    build_dags, traffic_distribution, ConvergenceCriteria, DualDecompConfig, FrankWolfeConfig,
    NemConfig, NemInstance, Objective, SplitRule, TeInstance, TeSolver,
};
use spef_graph::NodeId;
use spef_topology::{standard, TrafficMatrix};

/// Theorem 3.1 (weight-setting): all optimal flow travels on shortest
/// paths under the first weights `w = V'(s*)`.
#[test]
fn theorem_3_1_optimal_support_lies_on_shortest_paths() {
    for (net, tm) in [
        (standard::fig1(), standard::fig1_demands()),
        (standard::fig4(), standard::fig4_demands()),
    ] {
        let obj = Objective::proportional(net.link_count());
        let te = FrankWolfeConfig::default()
            .solve(TeInstance::new(&net, &tm, &obj))
            .unwrap();
        let max_w = te.weights.iter().cloned().fold(0.0, f64::max);
        let dags = build_dags(net.graph(), &te.weights, &tm.destinations(), 1e-3 * max_w).unwrap();
        for (dag, &t) in dags.iter().zip(&tm.destinations()) {
            let flows = te.flows.for_destination(t).unwrap();
            let peak = flows.iter().cloned().fold(0.0, f64::max);
            for (e, _, _) in net.graph().edges() {
                if flows[e.index()] > 1e-2 * peak {
                    assert!(
                        dag.contains_edge(e),
                        "{}: edge {e} carries {} toward {t} but is off the DAG",
                        net.name(),
                        flows[e.index()]
                    );
                }
            }
        }
    }
}

/// Theorem 3.3: the TE(V) optimum is (q, β) proportionally load balanced —
/// for any other feasible distribution f, Σ q (s_f − s*) / (s*)^β ≤ 0.
#[test]
fn theorem_3_3_optimum_is_q_beta_balanced() {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    for beta in [0.5, 1.0, 2.0] {
        let obj = Objective::uniform(beta, net.link_count());
        let te = FrankWolfeConfig::default()
            .solve(TeInstance::new(&net, &tm, &obj))
            .unwrap();
        // Alternative feasible distributions: ECMP under a few weight
        // settings whose MLU stays below 1 so they are genuinely feasible.
        for seed_w in [1.3f64, 2.0, 3.7] {
            let w: Vec<f64> = (0..net.link_count())
                .map(|e| 1.0 + ((e as f64) * seed_w).sin().abs())
                .collect();
            let dags = build_dags(net.graph(), &w, &tm.destinations(), 0.0).unwrap();
            let Ok(alt) = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp) else {
                continue;
            };
            if spef_core::metrics::max_link_utilization(&net, alt.aggregate()) >= 1.0 {
                continue;
            }
            let mut aggregate_change = 0.0;
            for e in 0..net.link_count() {
                let s_star = te.spare[e];
                let s_alt = net.capacities()[e] - alt.aggregate()[e];
                aggregate_change += (s_alt - s_star) / s_star.powf(beta);
            }
            assert!(
                aggregate_change <= 1e-4,
                "beta={beta} w-seed={seed_w}: proportional change {aggregate_change} > 0"
            );
        }
    }
}

/// Theorem 4.1 / Fig. 12(a): Algorithm 1's weights converge toward the
/// primal reference solver's weights.
#[test]
fn theorem_4_1_dual_decomposition_agrees_with_frank_wolfe() {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let obj = Objective::proportional(net.link_count());
    let fw = FrankWolfeConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    // Theorem 4.1's conditions: Σγ_k = ∞, γ_k → 0 (diminishing steps).
    let dd = DualDecompConfig {
        step: spef_core::StepRule::Diminishing(1.0),
        convergence: ConvergenceCriteria::budget(20000),
        record_trace: false,
    }
    .solve(TeInstance::new(&net, &tm, &obj))
    .unwrap();
    // The ergodic (averaged) primal recovery approaches the optimum.
    let dd_avg_utility = obj.aggregate_utility(
        &net.capacities()
            .iter()
            .zip(&dd.average_flows)
            .map(|(c, f)| c - f)
            .collect::<Vec<_>>(),
    );
    let primal = fw.utility;
    assert!(
        (dd_avg_utility - primal).abs() < 0.01 * primal.abs().max(1.0),
        "averaged dual-iterate utility {dd_avg_utility} vs primal {primal}"
    );
}

/// Theorem 4.2: the optimal TE is realisable with the second weights and
/// exponential flow splitting — end to end through `SpefRouting`.
#[test]
fn theorem_4_2_nem_realises_optimal_te() {
    for (net, tm) in [
        (standard::fig1(), standard::fig1_demands()),
        (standard::fig4(), standard::fig4_demands()),
    ] {
        let obj = Objective::proportional(net.link_count());
        let cfg = spef_core::SpefConfig {
            nem: NemConfig {
                convergence: ConvergenceCriteria::with_tolerance(20000, 1e-6),
                ..NemConfig::default()
            },
            ..spef_core::SpefConfig::default()
        };
        let routing = cfg.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        assert!(routing.nem_converged(), "{}", net.name());
        let te_utility = routing.te_solution().utility;
        let realized_spare: Vec<f64> = net
            .capacities()
            .iter()
            .zip(routing.flows().aggregate())
            .map(|(c, f)| c - f)
            .collect();
        let realized_utility = obj.aggregate_utility(&realized_spare);
        assert!(
            (realized_utility - te_utility).abs() < 0.01 * te_utility.abs().max(1.0),
            "{}: realized {realized_utility} vs optimal {te_utility}",
            net.name()
        );
    }
}

/// Remark 2: β → ∞ approaches min-max load balance; the large-β MLU
/// matches the exact min-MLU LP.
#[test]
fn large_beta_approaches_min_mlu() {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let lp = spef_baselines::mlu_lp::MluSolution::solve(&net, &tm).unwrap();
    let obj = Objective::uniform(25.0, net.link_count());
    let te = FrankWolfeConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let mlu = spef_core::metrics::max_link_utilization(&net, te.flows.aggregate());
    assert!(
        (mlu - lp.mlu).abs() < 0.05,
        "beta=25 MLU {mlu} vs LP optimum {}",
        lp.mlu
    );
}

/// Example 1 (§III.B): β = 1 weights equal the M/M/1 marginal delay
/// `1/(c−f)` on every link.
#[test]
fn example_1_proportional_weights_are_mm1_prices() {
    let net = standard::fig1();
    let tm = standard::fig1_demands();
    let obj = Objective::proportional(net.link_count());
    let te = FrankWolfeConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    for e in 0..net.link_count() {
        let expected = 1.0 / (net.capacities()[e] - te.flows.aggregate()[e]);
        assert!((te.weights[e] - expected).abs() < 1e-6 * expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 3.3's converse, randomised: the optimum's aggregate utility
    /// dominates every random feasible distribution's.
    #[test]
    fn optimum_dominates_random_feasible_flows(seed in 0u64..1000) {
        let net = standard::fig4();
        let base = standard::fig4_demands();
        // Random sub-scaling keeps alternatives feasible.
        let tm = base.scaled(0.4 + (seed % 5) as f64 * 0.08);
        let obj = Objective::proportional(net.link_count());
        let te = FrankWolfeConfig::fast().solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        // Random weight perturbation produces an alternative routing.
        let w: Vec<f64> = (0..net.link_count())
            .map(|e| 1.0 + (((e as u64 + 1) * (seed + 3)) % 7) as f64 * 0.29)
            .collect();
        let dags = build_dags(net.graph(), &w, &tm.destinations(), 0.0).unwrap();
        let alt = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp).unwrap();
        let alt_spare: Vec<f64> = net
            .capacities()
            .iter()
            .zip(alt.aggregate())
            .map(|(c, f)| c - f)
            .collect();
        if alt_spare.iter().all(|&s| s > 0.0) {
            prop_assert!(te.utility >= obj.aggregate_utility(&alt_spare) - 1e-6);
        }
    }

    /// NEM realisability on random diamond targets: any convex split of a
    /// two-path demand is induced by some second-weight pair (Eq. 18).
    #[test]
    fn nem_realises_arbitrary_two_path_splits(share in 0.05f64..0.95) {
        let mut g = spef_graph::Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let w = vec![1.0; 4];
        let mut tm = TrafficMatrix::new(4);
        tm.set(NodeId::new(0), NodeId::new(3), 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let target = vec![share, 1.0 - share, share, 1.0 - share];
        let out = NemConfig {
            convergence: ConvergenceCriteria::with_tolerance(20000, 1e-6),
            ..NemConfig::default()
        }
        .solve(NemInstance::new(&g, &dags, &tm, &target))
        .unwrap();
        prop_assert!(out.converged);
        prop_assert!((out.flows.aggregate()[0] - share).abs() < 1e-3);
    }
}
