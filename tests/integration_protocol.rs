//! End-to-end protocol tests: the full SPEF pipeline (Algorithm 4) on the
//! evaluation backbones.

use spef_core::{
    metrics, ConvergenceCriteria, Objective, SpefConfig, TeInstance, TeSolver, TeSolverKind,
    WeightMode,
};
use spef_topology::{standard, TrafficMatrix};

fn abilene_setup(load: f64) -> (spef_topology::Network, TrafficMatrix) {
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 42).scaled_to_network_load(&net, load);
    (net, tm)
}

#[test]
fn abilene_pipeline_is_feasible_and_consistent() {
    let (net, tm) = abilene_setup(0.12);
    let obj = Objective::proportional(net.link_count());
    let routing = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();

    // Feasible realisation.
    assert!(routing.max_link_utilization(&net) < 1.0);
    assert!(routing.normalized_utility(&net).is_finite());

    // Flow conservation of the realised flows, per destination.
    for &t in routing.flows().destinations() {
        let f = routing.flows().for_destination(t).unwrap();
        let div = net.graph().divergence(f);
        let demands = tm.demands_to(t);
        for node in net.graph().nodes() {
            if node != t {
                assert!(
                    (div[node.index()] - demands[node.index()]).abs() < 1e-6,
                    "conservation at {node} toward {t}"
                );
            }
        }
    }

    // Every FIB row's ratios sum to 1; every row's edges leave the node.
    let fib = routing.forwarding_table();
    for &t in fib.destinations() {
        for node in net.graph().nodes() {
            let hops = fib.next_hops(node, t).unwrap();
            if hops.is_empty() {
                continue;
            }
            let sum: f64 = hops.iter().map(|&(_, r)| r).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for &(e, _) in hops {
                assert_eq!(net.graph().source(e), node);
            }
        }
    }

    // First weights are positive; second weights non-negative.
    assert!(routing.first_weights().iter().all(|&w| w > 0.0));
    assert!(routing.second_weights().iter().all(|&v| v >= 0.0));
}

#[test]
fn weight_modes_degrade_gracefully() {
    let (net, tm) = abilene_setup(0.10);
    let obj = Objective::proportional(net.link_count());
    let mut utilities = Vec::new();
    for mode in [
        WeightMode::Exact,
        WeightMode::ScaledNoninteger,
        WeightMode::Integer,
    ] {
        let cfg = SpefConfig {
            weight_mode: mode,
            ..SpefConfig::default()
        };
        let routing = cfg.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        utilities.push(routing.normalized_utility(&net));
    }
    // All modes stay feasible at low load (Fig. 13: "little impact ...
    // for the low network loading").
    for (i, u) in utilities.iter().enumerate() {
        assert!(u.is_finite(), "mode {i} infeasible");
    }
    let exact = utilities[0];
    for u in &utilities[1..] {
        assert!(
            (u - exact).abs() < 0.25 * exact.abs().max(1.0),
            "large degradation: {utilities:?}"
        );
    }
}

#[test]
fn scaled_weights_preserve_routing_exactly() {
    // Scaling all weights by a constant cannot change shortest paths:
    // the ScaledNoninteger mode (with its paper tolerance) must keep the
    // realised MLU close to Exact's.
    let (net, tm) = abilene_setup(0.12);
    let obj = Objective::proportional(net.link_count());
    let exact = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let scaled = SpefConfig {
        weight_mode: WeightMode::ScaledNoninteger,
        ..SpefConfig::default()
    }
    .solve(TeInstance::new(&net, &tm, &obj))
    .unwrap();
    let mlu_e = exact.max_link_utilization(&net);
    let mlu_s = scaled.max_link_utilization(&net);
    assert!((mlu_e - mlu_s).abs() < 0.1, "{mlu_e} vs {mlu_s}");
}

#[test]
fn dual_decomposition_solver_pipeline_on_cernet2() {
    let net = standard::cernet2();
    let tm = TrafficMatrix::gravity(&net, 1.0, 5).scaled_to_network_load(&net, 0.08);
    let obj = Objective::proportional(net.link_count());
    let cfg = SpefConfig {
        solver: TeSolverKind::DualDecomposition(spef_core::DualDecompConfig {
            convergence: ConvergenceCriteria::budget(3000),
            record_trace: false,
            ..spef_core::DualDecompConfig::default()
        }),
        ..SpefConfig::default()
    };
    let routing = cfg.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
    assert!(routing.max_link_utilization(&net) < 1.0);
    assert!(routing.normalized_utility(&net).is_finite());
}

#[test]
fn table5_census_has_more_multipath_under_spef_at_high_load() {
    let net = standard::cernet2();
    let shape = TrafficMatrix::gravity(&net, 1.0, 20100110);
    let obj = Objective::proportional(net.link_count());
    let all_dests: Vec<_> = net.graph().nodes().collect();

    let invcap: Vec<f64> = net.capacities().iter().map(|c| 10.0 / c).collect();
    let ospf_dags = spef_core::build_dags(net.graph(), &invcap, &all_dests, 0.0).unwrap();
    let ospf_census = metrics::PathCensus::from_dags(&ospf_dags);

    let lmax = spef_experiments::scale::max_feasible_load(&net, &shape, 0.05).unwrap();
    let tm = shape.scaled_to_network_load(&net, 0.8 * lmax);
    let routing = SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let spef_dags = spef_core::build_dags(
        net.graph(),
        routing.first_weights(),
        &all_dests,
        routing.dijkstra_tolerance(),
    )
    .unwrap();
    let spef_census = metrics::PathCensus::from_dags(&spef_dags);

    assert_eq!(ospf_census.total_pairs(), 20 * 19);
    assert_eq!(spef_census.total_pairs(), 20 * 19);
    assert!(
        spef_census.multipath_pairs() >= ospf_census.multipath_pairs(),
        "SPEF {} vs OSPF {}",
        spef_census.multipath_pairs(),
        ospf_census.multipath_pairs()
    );
}

#[test]
fn infeasible_demand_is_rejected_up_front() {
    let net = standard::abilene();
    // 60% network load on a backbone with bottleneck cuts is not routable.
    let tm = TrafficMatrix::fortz_thorup(&net, 42).scaled_to_network_load(&net, 0.6);
    let obj = Objective::proportional(net.link_count());
    assert_eq!(
        SpefConfig::default()
            .solve(TeInstance::new(&net, &tm, &obj))
            .unwrap_err(),
        spef_core::SpefError::Infeasible
    );
}
