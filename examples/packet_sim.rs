//! Packet-level validation: run the discrete-event simulator over the
//! Fig. 4 network with the forwarding tables of OSPF, PEFT and SPEF, and
//! compare delivered throughput, loss and delay.
//!
//! This is the §V.D experiment extended with OSPF: the paper's TABLE IV
//! demands (4 Mb/s per pair over 5 Mb/s links) overload OSPF's bottleneck,
//! drop at PEFT's saturated link, and flow cleanly under SPEF.
//!
//! ```bash
//! cargo run --release -p spef-experiments --example packet_sim
//! ```

use spef_baselines::ospf::OspfRouting;
use spef_baselines::peft::PeftRouting;
use spef_core::{weights, Objective, SpefConfig, TeInstance, TeSolver};
use spef_netsim::{simulate_with, SimConfig, SimReport, SimWorkspace};
use spef_topology::standard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = standard::fig4();
    let traffic = standard::table4_simple_demands();
    let objective = Objective::proportional(network.link_count());

    let spef = SpefConfig::default().solve(TeInstance::new(&network, &traffic, &objective))?;
    let te = spef.te_solution();
    let peft = PeftRouting::route(
        &network,
        &traffic,
        &weights::integerize(&te.weights, &te.spare)?,
    )?;
    let ospf = OspfRouting::route(&network, &traffic)?;

    let cfg = SimConfig {
        duration: 60.0,
        warmup: 5.0,
        capacity_to_bps: 1e6, // capacity 5 = 5 Mb/s
        demand_to_bps: 1e6,   // demand 4 = 4 Mb/s
        seed: 99,
        ..SimConfig::default()
    };

    println!(
        "Fig. 4 network, TABLE IV demands (4 Mb/s x 4 pairs over 5 Mb/s links), {}s simulated\n",
        cfg.duration
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "proto", "delivered", "dropped", "loss %", "mean delay", "p99 delay", "pkt slots"
    );
    println!("{}", "-".repeat(81));
    // One workspace serves all three runs: after the first, the event
    // queue, arenas and histogram are recycled allocation-free.
    let mut ws = SimWorkspace::new();
    for (name, fib) in [
        ("OSPF", ospf.forwarding_table()),
        ("PEFT", peft.forwarding_table()),
        ("SPEF", spef.forwarding_table()),
    ] {
        let report = simulate_with(&network, &traffic, fib, &cfg, &mut ws)?;
        print_row(name, &report);
    }

    // Scheduler internals of the last run — the smoke check that the
    // calendar queue is actually bucketing (and recycling event slots)
    // rather than degenerating into one sorted list.
    let stats = ws.scheduler_stats();
    println!(
        "\nscheduler: {} | {} buckets x {} ns | max bucket occupancy {} | \
         peak events {} (slots {}) | resizes {} | peak overflow {}",
        stats.kind.id(),
        stats.bucket_count,
        stats.bucket_width_ns,
        stats.max_bucket_occupancy,
        stats.peak_events,
        stats.peak_event_slots,
        stats.resizes,
        stats.peak_overflow
    );

    println!(
        "\nreading: OSPF funnels two demands over one 5 Mb/s link (offered\n\
         8 Mb/s) and loses roughly a fifth of all packets; PEFT's\n\
         exponential splitting still saturates its favourite path; SPEF's\n\
         engineered equal-cost splits carry everything, with an order of\n\
         magnitude less delay."
    );
    Ok(())
}

fn print_row(name: &str, r: &SimReport) {
    let loss = 100.0 * r.dropped_packets as f64 / r.generated_packets.max(1) as f64;
    println!(
        "{:<8} {:>12} {:>12} {:>9.2}% {:>10.2}ms {:>10.2}ms {:>10}",
        name,
        r.delivered_packets,
        r.dropped_packets,
        loss,
        1e3 * r.mean_delay,
        1e3 * r.p99_delay,
        r.peak_packet_slots
    );
}
