//! Exploring the (q, β) objective family: one knob, many operator
//! policies.
//!
//! The paper's first contribution is a *generic* objective: β = 0 gives
//! minimum-hop routing (shortest paths, longest queues), β → ∞ gives
//! min-max load balance (flattest queues, longest detours), and the range
//! in between trades average path length against worst-case utilization.
//! This example sweeps β on Abilene and prints the trade-off an operator
//! would study before choosing a setting.
//!
//! ```bash
//! cargo run --release -p spef-experiments --example beta_tradeoff
//! ```

use spef_core::{FrankWolfeConfig, Objective, TeInstance, TeSolver, TeWorkspace};
use spef_topology::{standard, TrafficMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = standard::abilene();
    let traffic = TrafficMatrix::fortz_thorup(&network, 42).scaled_to_network_load(&network, 0.15);
    let total_demand = traffic.total_demand();

    println!(
        "{} at offered load {:.1}% — the (q, beta) family\n",
        network.name(),
        100.0 * traffic.network_load(&network)
    );
    println!(
        "{:>6} {:>10} {:>16} {:>18}",
        "beta", "MLU", "mean path (hops)", "total flow (Gb/s)"
    );
    println!("{}", "-".repeat(54));

    // One solver session for the whole sweep: the objective changes every
    // iteration (cold trajectories), but the engine and flow arenas are
    // reused across all six solves.
    let fw = FrankWolfeConfig::default();
    let mut ws = TeWorkspace::new();
    for beta in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let objective = Objective::uniform(beta, network.link_count());
        let sol = fw.solve_in(TeInstance::new(&network, &traffic, &objective), &mut ws)?;
        let total_flow: f64 = sol.flows.aggregate().iter().sum();
        // Total flow / total demand = demand-weighted mean hop count.
        let mean_hops = total_flow / total_demand;
        let mlu = spef_core::metrics::max_link_utilization(&network, sol.flows.aggregate());
        println!("{beta:>6.1} {mlu:>10.4} {mean_hops:>16.3} {total_flow:>18.2}");
    }

    println!(
        "\nreading: small beta minimises the total carried flow (short\n\
         paths) but tolerates hotter links; large beta spends extra hops\n\
         to flatten the utilization profile. beta = 1 (the paper's\n\
         default) sits at the proportional-fairness point between them."
    );
    Ok(())
}
