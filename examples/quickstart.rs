//! Quickstart: build SPEF routing for the Abilene backbone and compare it
//! with plain OSPF.
//!
//! ```bash
//! cargo run --release -p spef-experiments --example quickstart
//! ```

use spef_baselines::ospf::OspfRouting;
use spef_core::{Objective, SpefConfig, TeInstance, TeSolver};
use spef_topology::{standard, TrafficMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A network and an expected traffic matrix.
    let network = standard::abilene();
    let traffic = TrafficMatrix::fortz_thorup(&network, 42).scaled_to_network_load(&network, 0.15);
    println!(
        "network: {} ({} nodes, {} links), offered load {:.1}% of capacity",
        network.name(),
        network.node_count(),
        network.link_count(),
        100.0 * traffic.network_load(&network)
    );

    // 2. The TE objective: (q, β) proportional load balance with β = 1 —
    //    proportional fairness over spare capacity, the paper's default.
    let objective = Objective::proportional(network.link_count());

    // 3. Build the protocol state: first weights (optimal TE duals) and
    //    second weights (NEM), plus per-router forwarding tables.
    let spef = SpefConfig::default().solve(TeInstance::new(&network, &traffic, &objective))?;

    // 4. The baseline: InvCap weights, even ECMP.
    let ospf = OspfRouting::route(&network, &traffic)?;

    println!("\n{:<28} {:>10} {:>10}", "metric", "OSPF", "SPEF");
    println!("{}", "-".repeat(50));
    println!(
        "{:<28} {:>10.4} {:>10.4}",
        "max link utilization",
        ospf.max_link_utilization(&network),
        spef.max_link_utilization(&network)
    );
    println!(
        "{:<28} {:>10.3} {:>10.3}",
        "normalized utility",
        ospf.normalized_utility(&network),
        spef.normalized_utility(&network)
    );

    // 5. What an operator would actually configure: two weights per link.
    println!("\nper-link weights (first = OSPF metric, second = SPEF extra):");
    let g = network.graph();
    for (e, u, v) in g.edges().take(8) {
        println!(
            "  {:>14} -> {:<14}  w1 = {:>8.4}   w2 = {:>8.4}",
            network.node_name(u),
            network.node_name(v),
            spef.first_weights()[e.index()],
            spef.second_weights()[e.index()]
        );
    }
    println!("  ... ({} links total)", network.link_count());

    // 6. A router's forwarding table row (TABLE II of the paper).
    let dest = network.node_by_name("NewYork").expect("known node");
    let src = network.node_by_name("Sunnyvale").expect("known node");
    let hops = spef
        .forwarding_table()
        .next_hops(src, dest)
        .expect("destination is covered");
    println!("\nSunnyvale's next hops toward NewYork:");
    for &(e, ratio) in hops {
        println!(
            "  via {:<14} {:>6.2}%",
            network.node_name(g.target(e)),
            100.0 * ratio
        );
    }
    Ok(())
}
