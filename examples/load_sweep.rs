//! Capacity-planning scenario: how much more traffic can the Abilene
//! backbone absorb under SPEF than under OSPF before any link congests?
//!
//! This is the operational question behind the paper's Fig. 10: an ISP
//! watching demand grow wants to know the headroom its routing leaves.
//! (On networks whose worst link is a choice-free spur — e.g. our CERNET2
//! reconstruction — no routing scheme buys headroom; Abilene's diverse
//! core is where weight optimisation pays.)
//!
//! ```bash
//! cargo run --release -p spef-experiments --example load_sweep
//! ```

use spef_baselines::ospf::OspfRouting;
use spef_core::{Objective, SpefConfig, SpefError, TeInstance, TeSolver, TeWorkspace};
use spef_topology::{standard, Network, TrafficMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = standard::abilene();
    // Fortz–Thorup demand shape, as in the paper's Abilene experiments.
    let shape = TrafficMatrix::fortz_thorup(&network, 42);
    let objective = Objective::proportional(network.link_count());

    println!(
        "{} — sweeping offered load, Fortz-Thorup demand shape\n",
        network.name()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "load", "OSPF MLU", "SPEF MLU", "OSPF utility", "SPEF utility"
    );
    println!("{}", "-".repeat(64));

    let mut ospf_breaks = None;
    let mut spef_breaks = None;
    // One warm-start session across the sweep: each load is a proportional
    // rescale of the same demand shape, so every solve after the first
    // warm-starts from its neighbour's solution.
    let config = SpefConfig::default();
    let mut ws = TeWorkspace::new();
    for step in 4..=15 {
        let load = 0.015 * step as f64;
        let tm = shape.scaled_to_network_load(&network, load);
        let ospf = OspfRouting::route(&network, &tm)?;
        let ospf_mlu = ospf.max_link_utilization(&network);
        if ospf_mlu >= 1.0 && ospf_breaks.is_none() {
            ospf_breaks = Some(load);
        }
        let (spef_mlu, spef_u) =
            match config.solve_in(TeInstance::new(&network, &tm, &objective), &mut ws) {
                Ok(spef) => (
                    spef.max_link_utilization(&network),
                    spef.normalized_utility(&network),
                ),
                Err(SpefError::Infeasible) => {
                    if spef_breaks.is_none() {
                        spef_breaks = Some(load);
                    }
                    (f64::NAN, f64::NEG_INFINITY)
                }
                Err(e) => return Err(e.into()),
            };
        println!(
            "{:>8.3} {:>12.4} {:>12.4} {:>14.3} {:>14.3}",
            load,
            ospf_mlu,
            spef_mlu,
            ospf.normalized_utility(&network),
            spef_u,
        );
    }

    summarize(&network, ospf_breaks, spef_breaks);
    Ok(())
}

fn summarize(network: &Network, ospf_breaks: Option<f64>, spef_breaks: Option<f64>) {
    println!();
    match (ospf_breaks, spef_breaks) {
        (Some(o), Some(s)) => println!(
            "{}: OSPF congests at load {:.3}, SPEF at {:.3} — {:.0}% more headroom",
            network.name(),
            o,
            s,
            100.0 * (s / o - 1.0)
        ),
        (Some(o), None) => println!(
            "{}: OSPF congests at load {:.3}; SPEF never congested in this sweep",
            network.name(),
            o
        ),
        _ => println!(
            "{}: neither protocol congested in this sweep",
            network.name()
        ),
    }
}
